package netstack

import (
	"fmt"

	"ebbrt/internal/audit"
	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/rcu"
	"ebbrt/internal/sim"
)

// tcpState is the TCP connection state machine.
type tcpState int

const (
	tcpClosed tcpState = iota
	tcpListen
	tcpSynSent
	tcpSynReceived
	tcpEstablished
	tcpFinWait1
	tcpFinWait2
	tcpCloseWait
	tcpLastAck
	tcpClosing
	tcpTimeWait
)

func (s tcpState) String() string {
	return [...]string{"Closed", "Listen", "SynSent", "SynReceived", "Established",
		"FinWait1", "FinWait2", "CloseWait", "LastAck", "Closing", "TimeWait"}[s]
}

// seqLT is a wraparound-safe sequence comparison.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ is a wraparound-safe sequence comparison.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// tcpKey identifies a connection on an interface (the local address is the
// interface's).
type tcpKey struct {
	rip   Ipv4Addr
	rport uint16
	lport uint16
}

func tcpKeyHash(k tcpKey) uint64 {
	return rcu.Uint64Hash(uint64(k.rip.Uint32())<<32 | uint64(k.rport)<<16 | uint64(k.lport))
}

// ConnHandler carries the application callbacks for one TCP connection.
// All callbacks run synchronously on the connection's core.
type ConnHandler struct {
	// OnConnected fires when the handshake completes.
	OnConnected func(c *event.Ctx, pcb *TcpPcb)
	// OnReceive delivers in-order payload directly from the driver, as an
	// IOBuf view with no stack-side buffering or copying.
	OnReceive func(c *event.Ctx, pcb *TcpPcb, payload *iobuf.IOBuf)
	// OnAcked reports n bytes newly acknowledged by the peer - the signal
	// applications use to manage their own send buffering.
	OnAcked func(c *event.Ctx, pcb *TcpPcb, n int)
	// OnRemoteClosed fires when the peer half-closes (FIN received while
	// established); the local side may still send until it calls Close.
	OnRemoteClosed func(c *event.Ctx, pcb *TcpPcb)
	// OnClosed fires when the connection reaches Closed; err is non-nil
	// for resets and failures.
	OnClosed func(c *event.Ctx, pcb *TcpPcb, err error)
	// OnWindowOpen fires when a zero remote window reopens.
	OnWindowOpen func(c *event.Ctx, pcb *TcpPcb)
}

// TcpListener accepts inbound connections on a port.
type TcpListener struct {
	itf    *Interface
	port   uint16
	accept func(c *event.Ctx, pcb *TcpPcb) ConnHandler
}

// Close stops accepting new connections.
func (l *TcpListener) Close() { delete(l.itf.tcp.listeners, l.port) }

// tcpLayer is an interface's TCP state: listeners plus the RCU connection
// table the paper describes for lock-free lookup.
type tcpLayer struct {
	itf       *Interface
	listeners map[uint16]*TcpListener
	conns     *rcu.Table[tcpKey, *TcpPcb]
	nextPort  uint16
	isn       uint32
	ackQueue  []*TcpPcb // connections owing an ACK after the current drain batch
	stats     TcpStats
}

// TcpStats aggregates loss-recovery counters across every connection the
// interface has carried (live and closed) - the observability surface
// the lossy-link experiment reads.
type TcpStats struct {
	// Retransmits counts every retransmitted segment (timeout and fast).
	Retransmits uint64
	// FastRetransmits counts segments recovered by triple-duplicate-ACK
	// fast retransmit rather than a timeout.
	FastRetransmits uint64
	// PersistProbes counts zero-window probe segments.
	PersistProbes uint64
}

// TcpStats reports the interface's aggregate TCP loss-recovery counters.
func (itf *Interface) TcpStats() TcpStats { return itf.tcp.stats }

func newTcpLayer() *tcpLayer {
	return &tcpLayer{
		listeners: map[uint16]*TcpListener{},
		conns:     rcu.NewTable[tcpKey, *TcpPcb](tcpKeyHash, 64),
		nextPort:  49152,
		isn:       10000,
	}
}

// segment is one in-flight (sent, unacknowledged) transmit segment. The
// tracker keeps the payload bytes, not the built frame: retransmissions
// rebuild the header so they carry the connection's *current* ack and
// window (a replayed frame would re-advertise receive state from when
// the segment was first sent). sentAt and rexmit feed the RTT
// estimator: only segments transmitted exactly once yield samples
// (Karn's rule), taken from their last transmission time.
type segment struct {
	seq    uint32
	flags  byte
	data   []byte // payload copy (nil for bare SYN/FIN)
	seqLen uint32 // sequence space consumed (payload + SYN/FIN)
	sentAt sim.Time
	rexmit bool
}

// TcpPcb is a TCP protocol control block. It is manipulated only on its
// owning core (chosen when the connection was established), so none of its
// fields need synchronization - the paper's connection-affinity design.
type TcpPcb struct {
	itf   *Interface
	key   tcpKey
	core  int
	state tcpState
	h     ConnHandler

	// Send state.
	sndUna, sndNxt uint32
	sndWnd         uint32
	inflight       []segment
	rtoEvent       *sim.Event
	rtoBackoff     int
	rexmitSince    sim.Time // start of the current retransmission episode (0 = none)

	// RTT estimation (RFC 6298). rto == 0 means no sample yet; the
	// connection then times out on Cfg.RTO.
	srtt, rttvar, rto sim.Time

	// Fast-retransmit state: duplicate ACKs seen at sndUna, and whether
	// the current loss window already triggered a fast retransmit (one
	// per window; further recovery is the RTO's job).
	dupAcks      int
	fastRecovery bool

	// Zero-window persist state: when the peer closes its window and
	// nothing is in flight, the RTO cannot fire, so a lost window-update
	// ACK would deadlock the sender forever. The persist timer probes
	// with one already-acked byte to force a fresh ACK (and window) out
	// of the peer.
	persistEvent   *sim.Event
	persistBackoff int

	// Receive state.
	rcvNxt uint32
	rcvWnd uint32
	ooo    map[uint32]oooSegment

	flowHash  uint32
	needAck   bool
	queuedAck bool

	// Stats.
	Retransmits     uint64
	FastRetransmits uint64
	PersistProbes   uint64
}

type oooSegment struct {
	payload *iobuf.IOBuf
	fin     bool
	seqLen  uint32
}

// State returns the connection state name (for logs and tests).
func (p *TcpPcb) State() string { return p.state.String() }

// setState moves the connection state machine, publishing the
// transition to the stack's audit log when one is attached. Every
// transition after PCB creation goes through here so the audit stream
// sees the complete lifecycle (SynSent→Established→…→Closed).
func (p *TcpPcb) setState(c *event.Ctx, s tcpState) {
	if p.state == s {
		return
	}
	from := p.state
	p.state = s
	if a := p.itf.St.Audit; a != nil {
		a.Emit(c.Now(), p.itf.St.AuditNode, audit.TCPState, audit.Fields{
			"from":  from.String(),
			"to":    s.String(),
			"lport": int(p.key.lport),
			"rport": int(p.key.rport),
		})
	}
}

// auditRecovery publishes one loss-recovery action (retransmit, fast
// retransmit, persist probe) when an audit log is attached.
func (p *TcpPcb) auditRecovery(now sim.Time, kind audit.Kind) {
	if a := p.itf.St.Audit; a != nil {
		a.Emit(now, p.itf.St.AuditNode, kind, audit.Fields{
			"lport": int(p.key.lport),
			"rport": int(p.key.rport),
		})
	}
}

// Core reports the owning core.
func (p *TcpPcb) Core() int { return p.core }

// RemoteAddr reports the peer address and port.
func (p *TcpPcb) RemoteAddr() (Ipv4Addr, uint16) { return p.key.rip, p.key.rport }

// LocalPort reports the local port.
func (p *TcpPcb) LocalPort() uint16 { return p.key.lport }

// SendWindowRemaining reports how many bytes the peer's advertised window
// currently allows. Per the paper, applications check this before sending
// and buffer (or aggregate) themselves when it is exhausted.
func (p *TcpPcb) SendWindowRemaining() int {
	inFlight := p.sndNxt - p.sndUna
	if uint32(inFlight) >= p.sndWnd {
		return 0
	}
	return int(p.sndWnd - inFlight)
}

// SetReceiveWindow sets the advertised receive window - the pacing control
// the stack hands to the application instead of kernel socket buffers.
func (p *TcpPcb) SetReceiveWindow(n int) {
	if n < 0 {
		n = 0
	}
	if n > 65535 {
		n = 65535
	}
	p.rcvWnd = uint32(n)
}

// ListenTcp installs a listener. accept is invoked for each new connection
// (already established) and returns the connection's handler callbacks.
func (itf *Interface) ListenTcp(port uint16, accept func(c *event.Ctx, pcb *TcpPcb) ConnHandler) (*TcpListener, error) {
	t := itf.tcp
	if _, used := t.listeners[port]; used {
		return nil, fmt.Errorf("netstack: tcp port %d in use", port)
	}
	l := &TcpListener{itf: itf, port: port, accept: accept}
	t.listeners[port] = l
	return l, nil
}

// ConnectTcp opens a connection to dst:dstPort. The handler's OnConnected
// fires when the handshake completes. The connection is owned by the
// invoking core.
func (itf *Interface) ConnectTcp(c *event.Ctx, dst Ipv4Addr, dstPort uint16, h ConnHandler) (*TcpPcb, error) {
	t := itf.tcp
	var lport uint16
	for {
		lport = t.nextPort
		t.nextPort++
		if t.nextPort == 0 {
			t.nextPort = 49152
		}
		if _, exists := t.conns.Get(tcpKey{rip: dst, rport: dstPort, lport: lport}); !exists {
			break
		}
	}
	key := tcpKey{rip: dst, rport: dstPort, lport: lport}
	t.isn += 64000
	pcb := &TcpPcb{
		itf:      itf,
		key:      key,
		core:     c.Core().ID,
		h:        h,
		sndUna:   t.isn,
		sndNxt:   t.isn,
		sndWnd:   1, // room for the SYN until the peer advertises
		rcvWnd:   65535,
		ooo:      map[uint32]oooSegment{},
		flowHash: FlowHash(itf.Addr, lport, dst, dstPort),
	}
	pcb.setState(c, tcpSynSent)
	t.conns.Put(key, pcb)
	pcb.sendSegment(c, tcpSYN, nil)
	return pcb, nil
}

// Send transmits payload on an established connection, segmenting at MSS.
// It fails if the payload exceeds the remote window: the application is
// responsible for checking SendWindowRemaining and buffering excess
// (paper §3.6) - the stack never queues application data.
func (p *TcpPcb) Send(c *event.Ctx, payload *iobuf.IOBuf) error {
	if p.state != tcpEstablished && p.state != tcpCloseWait {
		return fmt.Errorf("netstack: send in state %v", p.state)
	}
	n := payload.ComputeChainDataLength()
	if n > p.SendWindowRemaining() {
		return fmt.Errorf("netstack: send of %d bytes exceeds remote window %d", n, p.SendWindowRemaining())
	}
	// Segment the chain at MSS boundaries. Data is gathered through the
	// chain without restructuring it (scatter/gather).
	mss := p.itf.St.Cfg.MSS
	reader := payload.Reader()
	for n > 0 {
		seg := n
		if seg > mss {
			seg = mss
		}
		data, err := reader.ReadBytes(seg)
		if err != nil {
			return fmt.Errorf("netstack: payload chain shorter than declared: %w", err)
		}
		p.sendSegment(c, tcpACK|tcpPSH, data)
		n -= seg
	}
	return nil
}

// Close initiates an orderly shutdown (FIN). Closing a connection whose
// handshake has not completed aborts it instead: there is no data an
// orderly FIN could protect, and leaving the PCB armed in the table
// would leak it forever if the handshake never completes.
func (p *TcpPcb) Close(c *event.Ctx) {
	switch p.state {
	case tcpEstablished:
		p.setState(c, tcpFinWait1)
		p.sendSegment(c, tcpFIN|tcpACK, nil)
	case tcpCloseWait:
		p.setState(c, tcpLastAck)
		p.sendSegment(c, tcpFIN|tcpACK, nil)
	case tcpSynSent, tcpSynReceived:
		p.sendRawSegment(c, p.sndNxt, p.rcvNxt, tcpRST|tcpACK, nil)
		p.teardown(c, nil)
	}
}

// Abort sends RST and drops the connection immediately.
func (p *TcpPcb) Abort(c *event.Ctx) {
	p.sendRawSegment(c, p.sndNxt, p.rcvNxt, tcpRST|tcpACK, nil)
	p.teardown(c, fmt.Errorf("netstack: connection aborted"))
}

// sendSegment builds and transmits one segment carrying data (may be nil),
// consuming sequence space and arming retransmission. The in-flight
// tracker keeps its own copy of the payload: the frame's bytes are
// consumed by delivery, and the caller may reuse its buffer.
func (p *TcpPcb) sendSegment(c *event.Ctx, flags byte, data []byte) {
	seq := p.sndNxt
	var seqLen uint32
	if data != nil {
		seqLen += uint32(len(data))
	}
	if flags&tcpSYN != 0 || flags&tcpFIN != 0 {
		seqLen++
	}
	frame := p.buildFrame(seq, p.rcvNxt, flags, data)
	p.sndNxt += seqLen
	if seqLen > 0 {
		var keep []byte
		if len(data) > 0 {
			keep = append([]byte(nil), data...)
		}
		p.inflight = append(p.inflight, segment{
			seq: seq, flags: flags, data: keep, seqLen: seqLen, sentAt: c.Now(),
		})
		p.armRTO()
	}
	p.transmitFrame(c, frame)
	p.needAck = false // every segment carries the current ack
}

// sendRawSegment transmits a segment without consuming sequence space
// (pure ACKs, RSTs, retransmissions use buildFrame directly).
func (p *TcpPcb) sendRawSegment(c *event.Ctx, seq, ack uint32, flags byte, data []byte) {
	p.transmitFrame(c, p.buildFrame(seq, ack, flags, data))
}

// buildFrame assembles ip+tcp headers plus payload into one IOBuf.
func (p *TcpPcb) buildFrame(seq, ack uint32, flags byte, data []byte) *iobuf.IOBuf {
	total := Ipv4HeaderLen + TcpHeaderLen + len(data)
	buf := iobuf.New(total)
	writeIpv4(buf.Append(Ipv4HeaderLen), Ipv4Header{
		TotalLen: uint16(total),
		TTL:      64,
		Proto:    ProtoTCP,
		Src:      p.itf.Addr,
		Dst:      p.key.rip,
	})
	writeTcp(buf.Append(TcpHeaderLen), TcpHeader{
		SrcPort: p.key.lport,
		DstPort: p.key.rport,
		Seq:     seq,
		Ack:     ack,
		DataOff: TcpHeaderLen,
		Flags:   flags,
		Window:  uint16(p.rcvWnd),
	})
	if len(data) > 0 {
		copy(buf.Append(len(data)), data)
	}
	return buf
}

func (p *TcpPcb) transmitFrame(c *event.Ctx, frame *iobuf.IOBuf) {
	c.Charge(p.itf.St.Cfg.PerPacketCPU)
	// ARP failures surface via retransmission timeout, as on real stacks.
	_ = p.itf.EthArpSend(c, EtherTypeIPv4, p.key.rip, frame, p.flowHash)
}

// rtoInterval is the connection's current timeout: the adaptive
// estimate when one exists (RFC 6298), else the configured initial RTO,
// backed off exponentially and clamped to RTOMax.
func (p *TcpPcb) rtoInterval() sim.Time {
	cfg := &p.itf.St.Cfg
	base := cfg.RTO
	if cfg.AdaptiveRTO && p.rto > 0 {
		base = p.rto
	}
	// Cap the shift so the ladder saturates at RTOMax instead of
	// overflowing sim.Time.
	shift := p.rtoBackoff
	if shift > 30 {
		shift = 30
	}
	d := base << shift
	if d > cfg.RTOMax || d <= 0 {
		d = cfg.RTOMax
	}
	return d
}

// sampleRTT folds one measurement into the SRTT/RTTVAR estimator
// (RFC 6298 §2) and recomputes the clamped RTO.
func (p *TcpPcb) sampleRTT(r sim.Time) {
	if r <= 0 {
		r = 1
	}
	if p.srtt == 0 {
		p.srtt = r
		p.rttvar = r / 2
	} else {
		diff := p.srtt - r
		if diff < 0 {
			diff = -diff
		}
		p.rttvar = (3*p.rttvar + diff) / 4
		p.srtt = (7*p.srtt + r) / 8
	}
	cfg := &p.itf.St.Cfg
	rto := p.srtt + 4*p.rttvar
	if rto < cfg.RTOMin {
		rto = cfg.RTOMin
	}
	if rto > cfg.RTOMax {
		rto = cfg.RTOMax
	}
	p.rto = rto
}

// SRTT reports the smoothed RTT estimate (0 before the first sample).
func (p *TcpPcb) SRTT() sim.Time { return p.srtt }

// CurrentRTO reports the timeout the next retransmission timer will use
// (before backoff).
func (p *TcpPcb) CurrentRTO() sim.Time {
	if p.itf.St.Cfg.AdaptiveRTO && p.rto > 0 {
		return p.rto
	}
	return p.itf.St.Cfg.RTO
}

// armRTO starts the retransmission timer if not running.
func (p *TcpPcb) armRTO() {
	if p.rtoEvent != nil {
		return
	}
	mgr := p.itf.St.Mgrs[p.core]
	p.rtoEvent = mgr.After(p.rtoInterval(), func(c *event.Ctx) {
		p.rtoEvent = nil
		if len(p.inflight) == 0 {
			return
		}
		now := c.Now()
		if p.rexmitSince == 0 {
			p.rexmitSince = now
		} else if now-p.rexmitSince > p.itf.St.Cfg.MaxRetransmitTime {
			p.teardown(c, fmt.Errorf("netstack: too many retransmissions"))
			return
		}
		p.rtoBackoff++
		// Retransmit the earliest unacked segment (go-back-one; the
		// simulated links do not reorder).
		p.retransmitSegment(c, &p.inflight[0])
		p.armRTO()
	})
}

// retransmitSegment rebuilds and resends one in-flight segment. The
// header is rebuilt from current connection state, so the retransmission
// advertises today's ack and window, not the values from when the
// segment was first sent. Marking the segment excludes it from RTT
// sampling (Karn's rule: an ACK for it could be for either transmission).
func (p *TcpPcb) retransmitSegment(c *event.Ctx, seg *segment) {
	seg.rexmit = true
	seg.sentAt = c.Now()
	p.Retransmits++
	p.itf.tcp.stats.Retransmits++
	p.auditRecovery(c.Now(), audit.TCPRetransmit)
	p.transmitFrame(c, p.buildFrame(seg.seq, p.rcvNxt, seg.flags, seg.data))
	p.needAck = false
}

func (p *TcpPcb) cancelRTO() {
	if p.rtoEvent != nil {
		p.rtoEvent.Cancel()
		p.rtoEvent = nil
	}
}

// armPersist starts the zero-window probe timer if not running. Probes
// back off exponentially from the current RTO up to RTOMax and repeat
// until an ACK reopens the window (or the connection dies): without
// them, a lost window-update ACK leaves both sides waiting forever.
func (p *TcpPcb) armPersist() {
	if p.persistEvent != nil {
		return
	}
	cfg := &p.itf.St.Cfg
	iv := p.CurrentRTO()
	shift := p.persistBackoff
	if shift > 30 {
		shift = 30
	}
	if iv <<= shift; iv > cfg.RTOMax || iv <= 0 {
		iv = cfg.RTOMax
	}
	mgr := p.itf.St.Mgrs[p.core]
	p.persistEvent = mgr.After(iv, func(c *event.Ctx) {
		p.persistEvent = nil
		if p.state == tcpClosed || p.sndWnd != 0 {
			return
		}
		p.persistBackoff++
		p.PersistProbes++
		p.itf.tcp.stats.PersistProbes++
		p.auditRecovery(c.Now(), audit.TCPPersistProbe)
		// Probe with one already-acknowledged byte (seq sndNxt-1): the
		// peer discards it as a duplicate and re-ACKs with its current
		// window.
		p.sendRawSegment(c, p.sndNxt-1, p.rcvNxt, tcpACK, []byte{0})
		p.armPersist()
	})
}

func (p *TcpPcb) cancelPersist() {
	p.persistBackoff = 0
	if p.persistEvent != nil {
		p.persistEvent.Cancel()
		p.persistEvent = nil
	}
}

func (p *TcpPcb) teardown(c *event.Ctx, err error) {
	p.cancelRTO()
	p.cancelPersist()
	wasClosed := p.state == tcpClosed
	p.setState(c, tcpClosed)
	p.itf.tcp.conns.Delete(p.key)
	if !wasClosed && p.h.OnClosed != nil {
		p.h.OnClosed(c, p, err)
	}
}

// receive demultiplexes one TCP packet to its connection or listener.
func (t *tcpLayer) receive(c *event.Ctx, ip Ipv4Header, buf *iobuf.IOBuf) {
	hdr, err := parseTcp(buf.Data())
	if err != nil {
		return
	}
	payloadView(buf, hdr.DataOff)

	key := tcpKey{rip: ip.Src, rport: hdr.SrcPort, lport: hdr.DstPort}
	if pcb, ok := t.conns.Get(key); ok {
		if pcb.core != c.Core().ID {
			// Steer to the owning core (should be rare with symmetric RSS).
			t.itf.St.Mgrs[pcb.core].Spawn(func(c2 *event.Ctx) {
				pcb.input(c2, hdr, buf)
				pcb.flushAck(c2)
			})
			return
		}
		pcb.input(c, hdr, buf)
		t.queueAck(pcb)
		return
	}

	// No connection: a listener may accept a SYN.
	if l, ok := t.listeners[hdr.DstPort]; ok && hdr.Flags&tcpSYN != 0 && hdr.Flags&tcpACK == 0 {
		t.acceptSyn(c, l, ip, hdr)
		return
	}
	// Otherwise reset (unless this was itself a reset).
	if hdr.Flags&tcpRST == 0 {
		t.sendReset(c, ip, hdr)
	}
}

// queueAck defers the connection's ACK until the driver finishes the
// current receive batch, coalescing ACKs across segments that arrived
// together (a software analogue of interrupt-batch acknowledgment).
func (t *tcpLayer) queueAck(pcb *TcpPcb) {
	if pcb.needAck && !pcb.queuedAck {
		pcb.queuedAck = true
		t.ackQueue = append(t.ackQueue, pcb)
	}
}

// flushAcks sends coalesced ACKs at the end of a receive batch.
func (t *tcpLayer) flushAcks(c *event.Ctx) {
	q := t.ackQueue
	t.ackQueue = nil
	for _, pcb := range q {
		pcb.queuedAck = false
		pcb.flushAck(c)
	}
}

func (p *TcpPcb) flushAck(c *event.Ctx) {
	if !p.needAck || p.state == tcpClosed {
		return
	}
	p.needAck = false
	p.sendRawSegment(c, p.sndNxt, p.rcvNxt, tcpACK, nil)
}

func (t *tcpLayer) acceptSyn(c *event.Ctx, l *TcpListener, ip Ipv4Header, hdr TcpHeader) {
	key := tcpKey{rip: ip.Src, rport: hdr.SrcPort, lport: hdr.DstPort}
	t.isn += 64000
	pcb := &TcpPcb{
		itf:      t.itf,
		key:      key,
		core:     c.Core().ID, // RSS placed the SYN here; affinity follows
		sndUna:   t.isn,
		sndNxt:   t.isn,
		sndWnd:   uint32(hdr.Window),
		rcvNxt:   hdr.Seq + 1,
		rcvWnd:   65535,
		ooo:      map[uint32]oooSegment{},
		flowHash: FlowHash(t.itf.Addr, hdr.DstPort, ip.Src, hdr.SrcPort),
	}
	pcb.setState(c, tcpSynReceived)
	pcb.h = l.accept(c, pcb)
	t.conns.Put(key, pcb)
	pcb.sendSegment(c, tcpSYN|tcpACK, nil)
}

func (t *tcpLayer) sendReset(c *event.Ctx, ip Ipv4Header, hdr TcpHeader) {
	tmp := &TcpPcb{
		itf:      t.itf,
		key:      tcpKey{rip: ip.Src, rport: hdr.SrcPort, lport: hdr.DstPort},
		flowHash: FlowHash(t.itf.Addr, hdr.DstPort, ip.Src, hdr.SrcPort),
	}
	tmp.sendRawSegment(c, hdr.Ack, hdr.Seq+1, tcpRST|tcpACK, nil)
}

// input runs the connection state machine for one segment.
func (p *TcpPcb) input(c *event.Ctx, hdr TcpHeader, payload *iobuf.IOBuf) {
	if hdr.Flags&tcpRST != 0 {
		p.teardown(c, fmt.Errorf("netstack: connection reset by peer"))
		return
	}
	plen := payload.ComputeChainDataLength()

	switch p.state {
	case tcpSynSent:
		if hdr.Flags&(tcpSYN|tcpACK) == tcpSYN|tcpACK && hdr.Ack == p.sndNxt {
			p.processAck(c, hdr, plen)
			p.rcvNxt = hdr.Seq + 1
			p.setState(c, tcpEstablished)
			p.needAck = true
			p.flushAck(c)
			if p.h.OnConnected != nil {
				p.h.OnConnected(c, p)
			}
		}
		return
	case tcpSynReceived:
		if hdr.Flags&tcpACK != 0 && seqLT(p.sndUna, hdr.Ack) {
			p.processAck(c, hdr, plen)
			p.setState(c, tcpEstablished)
			if p.h.OnConnected != nil {
				p.h.OnConnected(c, p)
			}
			// Fall through to process any data carried on the ACK.
		} else {
			return
		}
	}

	if hdr.Flags&tcpACK != 0 {
		p.processAck(c, hdr, plen)
	}
	if p.state == tcpClosed {
		return
	}
	p.processData(c, hdr, payload)
}

// processAck advances the send window and releases retransmission state.
// plen is the byte count of data carried alongside the ACK, used to tell
// a pure duplicate ACK (a loss signal) from a data segment that happens
// to repeat the ack field.
func (p *TcpPcb) processAck(c *event.Ctx, hdr TcpHeader, plen int) {
	ack := hdr.Ack
	wasZero := p.SendWindowRemaining() == 0
	oldWnd := p.sndWnd
	p.sndWnd = uint32(hdr.Window)
	if seqLT(p.sndUna, ack) && seqLEQ(ack, p.sndNxt) {
		p.sndUna = ack
		p.rtoBackoff = 0
		p.rexmitSince = 0
		p.dupAcks = 0
		p.fastRecovery = false
		// Drop fully acknowledged segments, counting the *data* bytes they
		// carried (SYN and FIN consume sequence space but are not data, so
		// the application's OnAcked never fires for handshake traffic).
		// The freshest never-retransmitted segment among them yields an
		// RTT sample (Karn's rule excludes retransmitted ones, whose ACK
		// is ambiguous between transmissions).
		dataAcked := 0
		var sampleFrom sim.Time = -1
		keep := p.inflight[:0]
		for _, seg := range p.inflight {
			if seqLT(ack, seg.seq+seg.seqLen) {
				keep = append(keep, seg)
				continue
			}
			n := int(seg.seqLen)
			if seg.flags&tcpSYN != 0 {
				n--
			}
			if seg.flags&tcpFIN != 0 {
				n--
			}
			dataAcked += n
			if !seg.rexmit && seg.sentAt > sampleFrom {
				sampleFrom = seg.sentAt
			}
		}
		p.inflight = keep
		if sampleFrom >= 0 {
			p.sampleRTT(c.Now() - sampleFrom)
		}
		p.cancelRTO()
		if len(p.inflight) > 0 {
			p.armRTO()
		}
		// State transitions driven by our FIN being acknowledged. The FIN
		// occupies the last sequence number, so it is covered exactly when
		// the ack reaches sndNxt.
		finCovered := p.sndUna == p.sndNxt
		switch p.state {
		case tcpFinWait1:
			if finCovered {
				p.setState(c, tcpFinWait2)
			}
		case tcpClosing:
			if finCovered {
				p.enterTimeWait(c)
			}
		case tcpLastAck:
			if finCovered {
				p.teardown(c, nil)
				return
			}
		}
		if dataAcked > 0 && p.h.OnAcked != nil {
			p.h.OnAcked(c, p, dataAcked)
		}
	} else if ack == p.sndUna && len(p.inflight) > 0 && plen == 0 &&
		hdr.Flags&(tcpSYN|tcpFIN) == 0 && uint32(hdr.Window) == oldWnd {
		// Duplicate ACK: the receiver got something above a hole. Three
		// in a row mean the segment at sndUna is almost certainly lost -
		// resend it now rather than waiting out the RTO (one fast
		// retransmit per loss window; if that doesn't advance sndUna the
		// timer takes over with backoff).
		p.dupAcks++
		if p.itf.St.Cfg.FastRetransmit && p.dupAcks >= 3 && !p.fastRecovery {
			p.fastRecovery = true
			p.FastRetransmits++
			p.itf.tcp.stats.FastRetransmits++
			p.auditRecovery(c.Now(), audit.TCPFastRetransmit)
			p.retransmitSegment(c, &p.inflight[0])
			p.cancelRTO()
			p.armRTO()
		}
	}
	// Zero-window persist: with nothing in flight the RTO cannot fire,
	// so only a probe can discover the reopened window if the peer's
	// window-update ACK is lost.
	if p.sndWnd == 0 && len(p.inflight) == 0 &&
		(p.state == tcpEstablished || p.state == tcpCloseWait) {
		p.armPersist()
	} else if p.sndWnd > 0 {
		p.cancelPersist()
	}
	if wasZero && p.SendWindowRemaining() > 0 && p.h.OnWindowOpen != nil {
		p.h.OnWindowOpen(c, p)
	}
}

// processData handles in-order delivery, reassembly, and FIN.
func (p *TcpPcb) processData(c *event.Ctx, hdr TcpHeader, payload *iobuf.IOBuf) {
	seqLen := uint32(payload.ComputeChainDataLength())
	fin := hdr.Flags&tcpFIN != 0
	if fin {
		seqLen++
	}
	if seqLen == 0 {
		return
	}
	seq := hdr.Seq
	// Discard already-received prefix.
	if seqLT(seq, p.rcvNxt) {
		dup := p.rcvNxt - seq
		if dup >= seqLen {
			p.needAck = true // pure duplicate: re-ACK
			return
		}
		advance := int(dup)
		if advance > payload.ComputeChainDataLength() {
			advance = payload.ComputeChainDataLength()
		}
		chainAdvance(payload, advance)
		seq += dup
	}
	if seq != p.rcvNxt {
		// Out of order: stash for reassembly and duplicate-ACK.
		if _, dup := p.ooo[seq]; !dup {
			p.ooo[seq] = oooSegment{payload: payload, fin: fin, seqLen: seqLen - (seq - hdr.Seq)}
		}
		p.needAck = true
		return
	}
	p.deliver(c, payload, fin, seqLen-(seq-hdr.Seq))
	p.drainReassembly(c)
}

// drainReassembly delivers every stashed out-of-order segment the
// receive stream has reached. A large in-order delivery can land at or
// beyond stashed segments that started elsewhere, so matching only the
// exact rcvNxt key would strand them in the map forever (a leak) - and
// a segment the stream has partially overtaken still carries new bytes,
// so it is trimmed and delivered rather than dropped.
func (p *TcpPcb) drainReassembly(c *event.Ctx) {
	for {
		delivered := false
		for seq, next := range p.ooo {
			if !seqLEQ(seq, p.rcvNxt) {
				continue // still a hole in front of this segment
			}
			delete(p.ooo, seq)
			overlap := p.rcvNxt - seq
			if overlap >= next.seqLen {
				continue // fully covered by what was already delivered
			}
			if overlap > 0 {
				dataLen := int(next.seqLen)
				if next.fin {
					dataLen--
				}
				adv := int(overlap)
				if adv > dataLen {
					adv = dataLen
				}
				chainAdvance(next.payload, adv)
			}
			p.deliver(c, next.payload, next.fin, next.seqLen-overlap)
			delivered = true
		}
		if !delivered {
			return // only stale entries were purged; rcvNxt is final
		}
	}
}

// chainAdvance advances a view across chain elements.
func chainAdvance(buf *iobuf.IOBuf, n int) {
	cur := buf
	for n > 0 {
		step := cur.Length()
		if step > n {
			step = n
		}
		cur.Advance(step)
		n -= step
		if n == 0 {
			break
		}
		cur = cur.Next()
		if cur == buf {
			break
		}
	}
}

// deliver hands in-order payload to the application and advances rcvNxt.
func (p *TcpPcb) deliver(c *event.Ctx, payload *iobuf.IOBuf, fin bool, seqLen uint32) {
	p.rcvNxt += seqLen
	p.needAck = true
	if n := payload.ComputeChainDataLength(); n > 0 && p.h.OnReceive != nil {
		c.Charge(p.itf.St.Cfg.AppDeliverCPU)
		p.h.OnReceive(c, p, payload)
	}
	if fin {
		switch p.state {
		case tcpEstablished:
			// Remote half-closed; the local side may still send until it
			// calls Close. OnClosed fires only at full teardown.
			p.setState(c, tcpCloseWait)
			if p.h.OnRemoteClosed != nil {
				p.h.OnRemoteClosed(c, p)
			}
		case tcpFinWait1:
			p.setState(c, tcpClosing)
		case tcpFinWait2:
			p.enterTimeWait(c)
		}
	}
}

// enterTimeWait briefly parks the key before release (shortened 2MSL; the
// simulated network cannot deliver ancient duplicates).
func (p *TcpPcb) enterTimeWait(c *event.Ctx) {
	p.setState(c, tcpTimeWait)
	p.flushAck(c)
	mgr := p.itf.St.Mgrs[p.core]
	mgr.After(1*sim.Millisecond, func(c2 *event.Ctx) {
		p.teardown(c2, nil)
	})
}
