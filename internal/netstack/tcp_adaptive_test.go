package netstack

import (
	"bytes"
	"testing"

	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/machine"
	"ebbrt/internal/sim"
)

// newTestNetCfg is newTestNet with an explicit stack configuration on
// both machines (for fixed-RTO baselines and ablation tests).
func newTestNetCfg(t *testing.T, coresA, coresB int, cfg Config) *testNet {
	t.Helper()
	k := sim.NewKernel()
	ma := machine.New(k, machine.DefaultConfig("a", coresA))
	mb := machine.New(k, machine.DefaultConfig("b", coresB))
	na := machine.NewNIC(ma, machine.MAC{0, 0, 0, 0, 0, 1})
	nb := machine.NewNIC(mb, machine.MAC{0, 0, 0, 0, 0, 2})
	link := machine.NewLink(k, na, nb)
	var mgrsA, mgrsB []*event.Manager
	for _, c := range ma.Cores {
		mgrsA = append(mgrsA, event.NewManager(c, event.DefaultCosts()))
	}
	for _, c := range mb.Cores {
		mgrsB = append(mgrsB, event.NewManager(c, event.DefaultCosts()))
	}
	sa := NewStack(ma, mgrsA, cfg)
	sb := NewStack(mb, mgrsB, cfg)
	itfA := sa.AddInterface(na, IP(10, 0, 0, 1), IP(255, 255, 255, 0))
	itfB := sb.AddInterface(nb, IP(10, 0, 0, 2), IP(255, 255, 255, 0))
	return &testNet{k: k, a: sa, b: sb, itfA: itfA, itfB: itfB, link: link}
}

// tapFrame is one decoded TCP frame observed on the wire.
type tapFrame struct {
	srcIP      Ipv4Addr
	hdr        TcpHeader
	payloadLen int
}

// decodeTcpFrame parses a link frame down to its TCP header; ok is
// false for non-IPv4/non-TCP traffic (ARP, etc).
func decodeTcpFrame(f machine.Frame) (tapFrame, bool) {
	b := f.Buf.CopyOut()
	eth, err := parseEth(b)
	if err != nil || eth.Type != EtherTypeIPv4 {
		return tapFrame{}, false
	}
	ip, err := parseIpv4(b[EthHeaderLen:])
	if err != nil || ip.Proto != ProtoTCP {
		return tapFrame{}, false
	}
	th, err := parseTcp(b[EthHeaderLen+Ipv4HeaderLen:])
	if err != nil {
		return tapFrame{}, false
	}
	return tapFrame{
		srcIP:      ip.Src,
		hdr:        th,
		payloadLen: int(ip.TotalLen) - Ipv4HeaderLen - th.DataOff,
	}, true
}

// TestTcpAdaptiveRTORecovery pins the tentpole behavior: with the
// adaptive estimator a microsecond-RTT link recovers a lost segment in
// about the measured RTT's RTO (~RTOMin), while the fixed-RTO baseline
// on the same topology stalls for the full configured 200ms.
func TestTcpAdaptiveRTORecovery(t *testing.T) {
	run := func(t *testing.T, cfg Config) (deliveredAt sim.Time, p *tcpPair) {
		n := newTestNetCfg(t, 1, 1, cfg)
		// Drop the first data-bearing frame from the client, once.
		dropped := false
		n.link.DropFn = func(idx uint64, f machine.Frame) bool {
			tf, ok := decodeTcpFrame(f)
			if !ok || dropped || tf.srcIP != IP(10, 0, 0, 1) || tf.payloadLen == 0 {
				return false
			}
			dropped = true
			return true
		}
		payload := []byte("adaptive-rto-payload")
		deliveredAt = -1
		p = establishTcp(t, n, ConnHandler{
			OnConnected: func(c *event.Ctx, pcb *TcpPcb) {
				_ = pcb.Send(c, iobuf.FromBytes(payload))
			},
		}, ConnHandler{
			OnReceive: func(c *event.Ctx, pcb *TcpPcb, buf *iobuf.IOBuf) {
				deliveredAt = c.Now()
			},
		}, nil)
		n.k.RunUntil(2 * sim.Second)
		if !dropped {
			t.Fatal("loss injection vacuous")
		}
		if deliveredAt < 0 {
			t.Fatal("payload never delivered")
		}
		if p.client.Retransmits < 1 {
			t.Fatalf("retransmits %d, want >= 1", p.client.Retransmits)
		}
		return deliveredAt, p
	}

	adaptive := DefaultConfig()
	fixed := DefaultConfig()
	fixed.AdaptiveRTO = false
	fixed.FastRetransmit = false

	t.Run("adaptive recovers near RTOMin", func(t *testing.T) {
		at, p := run(t, adaptive)
		if at > 20*sim.Millisecond {
			t.Fatalf("adaptive recovery took %.2fms, want well under the 200ms fixed RTO", float64(at)/1e6)
		}
		if p.client.SRTT() == 0 {
			t.Fatal("no RTT sample taken")
		}
		if rto := p.client.CurrentRTO(); rto < adaptive.RTOMin || rto > 10*sim.Millisecond {
			t.Fatalf("adaptive RTO %.3fms outside expected [1ms, 10ms]", float64(rto)/1e6)
		}
	})
	t.Run("fixed baseline stalls a full RTO", func(t *testing.T) {
		at, _ := run(t, fixed)
		if at < fixed.RTO {
			t.Fatalf("fixed-RTO recovery at %.2fms, expected to wait out the %.0fms RTO",
				float64(at)/1e6, float64(fixed.RTO)/1e6)
		}
	})
}

// TestTcpFastRetransmit drives a multi-segment window with one interior
// drop: the three duplicate ACKs from the segments above the hole must
// repair it in about one RTT, long before the (deliberately huge) RTO.
func TestTcpFastRetransmit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdaptiveRTO = false
	cfg.RTO = 5 * sim.Second // a timeout recovery would blow the deadline below
	n := newTestNetCfg(t, 1, 1, cfg)

	// Drop the second data-bearing frame from the client, once.
	dataSeen, dropped := 0, false
	n.link.DropFn = func(idx uint64, f machine.Frame) bool {
		tf, ok := decodeTcpFrame(f)
		if !ok || tf.srcIP != IP(10, 0, 0, 1) || tf.payloadLen == 0 {
			return false
		}
		dataSeen++
		if dataSeen == 2 && !dropped {
			dropped = true
			return true
		}
		return false
	}

	const segs = 6
	chunk := bytes.Repeat([]byte("x"), 512)
	var rx []byte
	p := establishTcp(t, n, ConnHandler{
		OnConnected: func(c *event.Ctx, pcb *TcpPcb) {
			// Space the segments out so each arrival above the hole
			// produces its own duplicate ACK (no coalescing).
			for i := 0; i < segs; i++ {
				i := i
				c.Manager().After(sim.Time(i)*20*sim.Microsecond, func(c *event.Ctx) {
					seg := append([]byte(nil), chunk...)
					seg[0] = byte('a' + i)
					_ = pcb.Send(c, iobuf.FromBytes(seg))
				})
			}
		},
	}, ConnHandler{}, &rx)
	n.k.RunUntil(1 * sim.Second)

	if !dropped {
		t.Fatal("loss injection vacuous")
	}
	if len(rx) != segs*len(chunk) {
		t.Fatalf("delivered %d bytes, want %d", len(rx), segs*len(chunk))
	}
	for i := 0; i < segs; i++ {
		if rx[i*len(chunk)] != byte('a'+i) {
			t.Fatalf("segment %d out of order in delivered stream", i)
		}
	}
	if p.client.FastRetransmits != 1 {
		t.Fatalf("fast retransmits %d, want 1", p.client.FastRetransmits)
	}
	if p.client.Retransmits != 1 {
		t.Fatalf("retransmits %d, want exactly the one fast retransmit", p.client.Retransmits)
	}
	if n.itfA.TcpStats().FastRetransmits != 1 {
		t.Fatalf("interface stats missed the fast retransmit: %+v", n.itfA.TcpStats())
	}
}

// TestTcpPersistProbeBreaksZeroWindowDeadlock reproduces the classic
// deadlock: the receiver closes its window, later reopens it, and the
// window-update ACK is lost. Without a persist probe the sender waits
// forever (OnWindowOpen only fires if some later ACK happens to
// arrive); with it, a probe elicits a fresh ACK carrying the open
// window and the transfer resumes.
func TestTcpPersistProbeBreaksZeroWindowDeadlock(t *testing.T) {
	n := newTestNet(t, 1, 1)

	// Drop exactly the server's window-update ACK, armed by the test
	// when it reopens the window.
	dropNextServerAck, droppedUpdate := false, false
	n.link.DropFn = func(idx uint64, f machine.Frame) bool {
		if !dropNextServerAck {
			return false
		}
		tf, ok := decodeTcpFrame(f)
		if !ok || tf.srcIP != IP(10, 0, 0, 2) {
			return false
		}
		dropNextServerAck = false
		droppedUpdate = true
		return true
	}

	var rx []byte
	windowOpened := false
	part1, part2 := []byte("first-part"), []byte("second-part")
	var client *TcpPcb
	firstDelivery := true
	p := establishTcp(t, n, ConnHandler{
		OnConnected: func(c *event.Ctx, pcb *TcpPcb) {
			client = pcb
			_ = pcb.Send(c, iobuf.FromBytes(part1))
		},
		OnWindowOpen: func(c *event.Ctx, pcb *TcpPcb) {
			windowOpened = true
			_ = pcb.Send(c, iobuf.FromBytes(part2))
		},
	}, ConnHandler{
		OnReceive: func(c *event.Ctx, pcb *TcpPcb, buf *iobuf.IOBuf) {
			// Slam the window shut on the first delivery; the ACK for
			// part1 advertises zero.
			if firstDelivery {
				firstDelivery = false
				pcb.SetReceiveWindow(0)
			}
		},
	}, &rx)
	n.k.RunUntil(50 * sim.Millisecond)

	if !bytes.Equal(rx, part1) {
		t.Fatalf("first part not delivered: %q", rx)
	}
	if client.SendWindowRemaining() != 0 {
		t.Fatal("client did not observe the zero window")
	}

	// Reopen the window and push the update ACK - which the tap drops.
	n.b.Mgrs[p.server.core].Spawn(func(c *event.Ctx) {
		p.server.SetReceiveWindow(65535)
		dropNextServerAck = true
		p.server.needAck = true
		p.server.flushAck(c)
	})
	n.k.RunUntil(20 * sim.Second)

	if !droppedUpdate {
		t.Fatal("window-update ACK was not dropped - deadlock not exercised")
	}
	if !windowOpened {
		t.Fatal("OnWindowOpen never fired: zero-window deadlock not broken")
	}
	if want := append(append([]byte(nil), part1...), part2...); !bytes.Equal(rx, want) {
		t.Fatalf("delivered %q, want %q", rx, want)
	}
	if client.PersistProbes == 0 {
		t.Fatal("no persist probes sent")
	}
	if n.itfA.TcpStats().PersistProbes == 0 {
		t.Fatalf("interface stats missed the persist probes: %+v", n.itfA.TcpStats())
	}
}

// TestTcpRetransmitCarriesCurrentAck is the regression test for the
// stale-header replay bug: a segment retransmitted after the receive
// side has made progress must advertise the *current* rcvNxt, not the
// ack frozen into the frame when the segment was first built.
func TestTcpRetransmitCarriesCurrentAck(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdaptiveRTO = false
	cfg.RTO = 20 * sim.Millisecond
	n := newTestNetCfg(t, 1, 1, cfg)

	// Drop the client's first data frame once, and record the ack field
	// of its retransmission (the second client frame with that seq).
	var lostSeq uint32
	var rexmitAck uint32
	state := 0 // 0: waiting for first data frame, 1: waiting for rexmit, 2: done
	n.link.DropFn = func(idx uint64, f machine.Frame) bool {
		tf, ok := decodeTcpFrame(f)
		if !ok || tf.srcIP != IP(10, 0, 0, 1) || tf.payloadLen == 0 {
			return false
		}
		switch state {
		case 0:
			lostSeq = tf.hdr.Seq
			state = 1
			return true
		case 1:
			if tf.hdr.Seq == lostSeq {
				rexmitAck = tf.hdr.Ack
				state = 2
			}
		}
		return false
	}

	var serverRx []byte
	reply := []byte("server-progress")
	p := establishTcp(t, n, ConnHandler{
		OnConnected: func(c *event.Ctx, pcb *TcpPcb) {
			_ = pcb.Send(c, iobuf.FromBytes([]byte("to-server")))
		},
	}, ConnHandler{}, &serverRx)
	n.k.RunUntil(5 * sim.Millisecond)
	if state != 1 {
		t.Fatal("first data frame was not dropped")
	}

	// Receive-side progress while the lost segment waits for its RTO:
	// the server pushes data, which the client receives and acks.
	n.b.Mgrs[p.server.core].Spawn(func(c *event.Ctx) {
		_ = p.server.Send(c, iobuf.FromBytes(reply))
	})
	n.k.RunUntil(1 * sim.Second)

	if state != 2 {
		t.Fatal("retransmission never observed")
	}
	if !bytes.Equal(serverRx, []byte("to-server")) {
		t.Fatalf("server got %q", serverRx)
	}
	// The retransmitted frame must acknowledge the server's pushed
	// data: ack == the client's rcvNxt at retransmit time, which covers
	// len(reply) bytes past the handshake.
	wantAck := p.server.sndNxt // server sent everything before the rexmit fired
	if rexmitAck != wantAck {
		t.Fatalf("retransmission carried ack %d, want current %d (stale by %d bytes)",
			rexmitAck, wantAck, wantAck-rexmitAck)
	}
}

// TestTcpReassemblyPurgesOverlappedSegments is the regression test for
// the out-of-order map leak: stashed segments at or below rcvNxt after
// a larger in-order delivery must be purged (fully covered) or trimmed
// and delivered (partially covered), never stranded in the map.
func TestTcpReassemblyPurgesOverlappedSegments(t *testing.T) {
	// One byte per position so delivery order and trimming are checked
	// byte-exactly. Ranges are [start, end) offsets into this stream.
	stream := []byte("0123456789abcdefghijklmnop")
	type rng struct{ start, end int }
	cases := []struct {
		name string
		ooo  []rng // stashed first, in order
		fill rng   // the in-order delivery that lands at or past them
		want int   // total delivered prefix length afterward
	}{
		{"fully covered ooo purged", []rng{{10, 15}}, rng{0, 15}, 15},
		{"partially covered ooo trimmed", []rng{{8, 16}}, rng{0, 12}, 16},
		{"multiple stale purged", []rng{{10, 14}, {14, 18}, {5, 9}}, rng{0, 18}, 18},
		{"trim chains into drain", []rng{{6, 10}, {10, 14}}, rng{0, 8}, 14},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := newTestNet(t, 1, 1)
			var rx []byte
			p := establishTcp(t, n, ConnHandler{}, ConnHandler{}, &rx)
			n.k.RunUntil(100 * sim.Millisecond)
			if p.server == nil || p.server.State() != "Established" {
				t.Fatal("not established")
			}
			base := p.server.rcvNxt
			inject := func(c *event.Ctx, r rng) {
				hdr := TcpHeader{
					SrcPort: p.server.key.rport,
					DstPort: p.server.key.lport,
					Seq:     base + uint32(r.start),
					Ack:     p.server.sndNxt,
					DataOff: TcpHeaderLen,
					Flags:   tcpACK | tcpPSH,
					Window:  65535,
				}
				p.server.input(c, hdr, iobuf.FromBytes(stream[r.start:r.end]))
			}
			n.b.Mgrs[p.server.core].Spawn(func(c *event.Ctx) {
				for _, r := range tc.ooo {
					inject(c, r)
				}
				inject(c, tc.fill)
			})
			n.k.RunUntil(200 * sim.Millisecond)

			if !bytes.Equal(rx, stream[:tc.want]) {
				t.Fatalf("delivered %q, want %q", rx, stream[:tc.want])
			}
			if p.server.rcvNxt != base+uint32(tc.want) {
				t.Fatalf("rcvNxt advanced %d, want %d", p.server.rcvNxt-base, tc.want)
			}
			if len(p.server.ooo) != 0 {
				t.Fatalf("%d segments stranded in the reassembly map", len(p.server.ooo))
			}
		})
	}
}

// TestTcpCloseDuringHandshake is the regression test for the PCB leak:
// closing a connection whose handshake never completes must abort it -
// empty connection table, OnClosed exactly once, no armed timers left.
func TestTcpCloseDuringHandshake(t *testing.T) {
	t.Run("SynSent to blackhole", func(t *testing.T) {
		n := newTestNet(t, 1, 1)
		n.link.DropFn = func(idx uint64, f machine.Frame) bool { return true }
		closed := 0
		var pcb *TcpPcb
		n.spawnA(func(c *event.Ctx) {
			var err error
			pcb, err = n.itfA.ConnectTcp(c, IP(10, 0, 0, 2), 80, ConnHandler{
				OnClosed: func(c *event.Ctx, pcb *TcpPcb, err error) { closed++ },
			})
			if err != nil {
				t.Errorf("connect: %v", err)
			}
		})
		n.k.RunUntil(10 * sim.Millisecond) // SYN lost, RTO armed
		if pcb.State() != "SynSent" {
			t.Fatalf("precondition: state %s, want SynSent", pcb.State())
		}
		n.a.Mgrs[pcb.core].Spawn(func(c *event.Ctx) { pcb.Close(c) })
		// The abort must take effect promptly - not by waiting out the
		// retransmission give-up a hundred seconds later.
		n.k.RunUntil(20 * sim.Millisecond)

		if pcb.State() != "Closed" {
			t.Fatalf("state %s, want Closed", pcb.State())
		}
		if closed != 1 {
			t.Fatalf("OnClosed fired %d times, want 1", closed)
		}
		if _, ok := n.a.Itfs[0].tcp.conns.Get(pcb.key); ok {
			t.Fatal("pcb leaked in the connection table")
		}
		rexmits := pcb.Retransmits
		n.k.RunUntil(500 * sim.Second) // outlast any leaked retransmission ladder
		if closed != 1 {
			t.Fatalf("OnClosed re-fired later (%d times total)", closed)
		}
		if pcb.Retransmits != rexmits {
			t.Fatal("closed pcb kept retransmitting")
		}
	})

	t.Run("SynReceived when the handshake ACK never comes", func(t *testing.T) {
		n := newTestNet(t, 1, 1)
		// Let the client's SYN through, blackhole the server's SYN-ACK
		// (and everything after): the server parks in SynReceived.
		n.link.DropFn = func(idx uint64, f machine.Frame) bool {
			tf, ok := decodeTcpFrame(f)
			return ok && tf.srcIP == IP(10, 0, 0, 2)
		}
		closed := 0
		var server *TcpPcb
		n.spawnB(func(c *event.Ctx) {
			_, err := n.itfB.ListenTcp(80, func(c *event.Ctx, pcb *TcpPcb) ConnHandler {
				// The client retransmits its unanswered SYN, so the
				// listener accepts fresh connections after we abort the
				// first; only the first is under test.
				if server != nil {
					return ConnHandler{}
				}
				server = pcb
				return ConnHandler{
					OnClosed: func(c *event.Ctx, pcb *TcpPcb, err error) { closed++ },
				}
			})
			if err != nil {
				t.Errorf("listen: %v", err)
			}
		})
		n.spawnA(func(c *event.Ctx) {
			_, err := n.itfA.ConnectTcp(c, IP(10, 0, 0, 2), 80, ConnHandler{})
			if err != nil {
				t.Errorf("connect: %v", err)
			}
		})
		n.k.RunUntil(10 * sim.Millisecond)
		if server == nil || server.State() != "SynReceived" {
			t.Fatalf("precondition: server not parked in SynReceived")
		}
		n.b.Mgrs[server.core].Spawn(func(c *event.Ctx) { server.Close(c) })
		n.k.RunUntil(30 * sim.Millisecond)

		if server.State() != "Closed" {
			t.Fatalf("state %s, want Closed", server.State())
		}
		if closed != 1 {
			t.Fatalf("OnClosed fired %d times, want 1", closed)
		}
		if _, ok := n.b.Itfs[0].tcp.conns.Get(server.key); ok {
			t.Fatal("pcb leaked in the connection table")
		}
		n.k.RunUntil(500 * sim.Second) // outlast the client's give-up ladder
		if closed != 1 {
			t.Fatalf("OnClosed re-fired later (%d times total)", closed)
		}
	})
}

// TestTcpKarnRuleSkipsRetransmittedSamples checks that an ACK covering
// a retransmitted segment does not poison the estimator: the RTT
// "sample" measured across a retransmission (which includes the whole
// timeout) must not inflate SRTT.
func TestTcpKarnRuleSkipsRetransmittedSamples(t *testing.T) {
	n := newTestNet(t, 1, 1)
	// Drop the first data frame: its eventual ACK spans send+RTO+resend.
	dropped := false
	n.link.DropFn = func(idx uint64, f machine.Frame) bool {
		tf, ok := decodeTcpFrame(f)
		if !ok || dropped || tf.srcIP != IP(10, 0, 0, 1) || tf.payloadLen == 0 {
			return false
		}
		dropped = true
		return true
	}
	var rx []byte
	p := establishTcp(t, n, ConnHandler{
		OnConnected: func(c *event.Ctx, pcb *TcpPcb) {
			_ = pcb.Send(c, iobuf.FromBytes([]byte("sample-me")))
		},
	}, ConnHandler{}, &rx)
	n.k.RunUntil(2 * sim.Second)

	if !dropped || len(rx) == 0 {
		t.Fatal("transfer did not exercise the retransmission")
	}
	if p.client.Retransmits == 0 {
		t.Fatal("no retransmission happened")
	}
	// The only clean samples came from the microsecond-scale handshake
	// and any non-retransmitted data; if the retransmitted segment had
	// been sampled, SRTT would jump past the ~1ms timeout that the
	// recovery waited out.
	if srtt := p.client.SRTT(); srtt <= 0 || srtt >= 500*sim.Microsecond {
		t.Fatalf("SRTT %.1fus - retransmitted segment appears to have been sampled", float64(srtt)/1e3)
	}
}
