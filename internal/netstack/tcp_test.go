package netstack

import (
	"bytes"
	"testing"

	"ebbrt/internal/event"
	"ebbrt/internal/iobuf"
	"ebbrt/internal/machine"
	"ebbrt/internal/sim"
)

// tcpPair is one established connection from A (client) to B (server).
type tcpPair struct {
	net    *testNet
	client *TcpPcb
	server *TcpPcb
	rx     *[]byte
}

func establishTcp(t *testing.T, n *testNet, clientH, serverH ConnHandler, serverRx *[]byte) *tcpPair {
	t.Helper()
	p := &tcpPair{net: n, rx: serverRx}
	n.spawnB(func(c *event.Ctx) {
		_, err := n.itfB.ListenTcp(80, func(c *event.Ctx, pcb *TcpPcb) ConnHandler {
			p.server = pcb
			h := serverH
			if serverRx != nil {
				inner := h.OnReceive
				h.OnReceive = func(c *event.Ctx, pcb *TcpPcb, buf *iobuf.IOBuf) {
					*serverRx = append(*serverRx, buf.CopyOut()...)
					if inner != nil {
						inner(c, pcb, buf)
					}
				}
			}
			return h
		})
		if err != nil {
			t.Errorf("listen: %v", err)
		}
	})
	n.spawnA(func(c *event.Ctx) {
		pcb, err := n.itfA.ConnectTcp(c, IP(10, 0, 0, 2), 80, clientH)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		p.client = pcb
	})
	return p
}

// TestTcpRetransmissionTimeout is the table-driven loss/timeout matrix:
// from a single dropped data segment (recovered by one RTO firing)
// through a lost SYN to total blackhole (escalating backoff until the
// stack gives up and reports the failure).
func TestTcpRetransmissionTimeout(t *testing.T) {
	const size = 8000
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	cases := []struct {
		name string
		// drop decides frame loss by on-wire index (0-based; the
		// handshake occupies the first frames).
		drop func(idx uint64) bool
		run  sim.Time
		// wantDelivered: the full payload arrives despite the loss.
		wantDelivered bool
		// wantClientErr: the client connection must die with an error.
		wantClientErr bool
		minRetransmit uint64
	}{
		{
			name:          "no loss no retransmit",
			drop:          func(idx uint64) bool { return false },
			run:           2 * sim.Second,
			wantDelivered: true,
			minRetransmit: 0,
		},
		{
			name:          "single data segment lost",
			drop:          func(idx uint64) bool { return idx == 7 },
			run:           5 * sim.Second,
			wantDelivered: true,
			minRetransmit: 1,
		},
		{
			name:          "burst of three lost",
			drop:          func(idx uint64) bool { return idx >= 7 && idx <= 9 },
			run:           10 * sim.Second,
			wantDelivered: true,
			minRetransmit: 1,
		},
		{
			name: "client SYN lost once",
			drop: func(idx uint64) bool { return idx == 0 },
			run:  5 * sim.Second,
			// The SYN retransmits after one RTO; the transfer completes.
			wantDelivered: true,
			minRetransmit: 1,
		},
		{
			name: "blackhole after handshake",
			drop: func(idx uint64) bool { return idx >= 5 },
			run:  400 * sim.Second, // outlast the full backoff ladder
			// Nothing arrives and the client must give up with an error
			// after exhausting its exponential backoff.
			wantDelivered: false,
			wantClientErr: true,
			minRetransmit: 8,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := newTestNet(t, 1, 1)
			n.link.DropFn = func(idx uint64, f machine.Frame) bool { return tc.drop(idx) }
			var rx []byte
			var clientErr error
			clientClosed := false
			var sent int
			var pump func(c *event.Ctx, pcb *TcpPcb)
			pump = func(c *event.Ctx, pcb *TcpPcb) {
				for sent < size {
					chunk := size - sent
					if w := pcb.SendWindowRemaining(); chunk > w {
						chunk = w
					}
					if chunk == 0 {
						return
					}
					if err := pcb.Send(c, iobuf.FromBytes(payload[sent:sent+chunk])); err != nil {
						return
					}
					sent += chunk
				}
			}
			p := establishTcp(t, n, ConnHandler{
				OnConnected: pump,
				OnAcked:     func(c *event.Ctx, pcb *TcpPcb, nAck int) { pump(c, pcb) },
				OnClosed: func(c *event.Ctx, pcb *TcpPcb, err error) {
					clientClosed = true
					clientErr = err
				},
			}, ConnHandler{}, &rx)
			n.k.RunUntil(tc.run)

			if tc.wantDelivered && !bytes.Equal(rx, payload) {
				t.Fatalf("delivered %d bytes, want %d intact", len(rx), size)
			}
			if !tc.wantDelivered && len(rx) != 0 {
				t.Fatalf("unexpected delivery of %d bytes", len(rx))
			}
			if tc.wantClientErr && (!clientClosed || clientErr == nil) {
				t.Fatalf("client should have failed: closed=%v err=%v", clientClosed, clientErr)
			}
			if !tc.wantClientErr && clientErr != nil {
				t.Fatalf("unexpected client error: %v", clientErr)
			}
			if p.client.Retransmits < tc.minRetransmit {
				t.Fatalf("retransmits %d, want >= %d", p.client.Retransmits, tc.minRetransmit)
			}
		})
	}
}

// TestTcpOutOfOrderReassembly injects crafted segments directly into an
// established server pcb in every arrival order (and with duplicates and
// stale overlaps) and requires in-order delivery of the byte stream.
func TestTcpOutOfOrderReassembly(t *testing.T) {
	segs := [][]byte{
		[]byte("AAAAAAAA"),
		[]byte("BBBBB"),
		[]byte("CCCCCCCCCCC"),
	}
	var whole []byte
	for _, s := range segs {
		whole = append(whole, s...)
	}

	cases := []struct {
		name  string
		order []int // injection order; -1 re-injects the previous segment
	}{
		{"in order", []int{0, 1, 2}},
		{"fully reversed", []int{2, 1, 0}},
		{"middle first", []int{1, 0, 2}},
		{"last in the middle", []int{0, 2, 1}},
		{"hole then fill", []int{2, 0, 1}},
		{"rotated", []int{1, 2, 0}},
		{"duplicate ooo segment", []int{2, 2, 0, 1}},
		{"duplicate after delivery", []int{0, 0, 1, 2}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := newTestNet(t, 1, 1)
			var rx []byte
			p := establishTcp(t, n, ConnHandler{}, ConnHandler{}, &rx)
			n.k.RunUntil(100 * sim.Millisecond)
			if p.server == nil || p.server.State() != "Established" {
				t.Fatal("connection not established")
			}

			// Segment offsets relative to the server's current rcvNxt.
			offs := make([]uint32, len(segs))
			var off uint32
			for i, s := range segs {
				offs[i] = off
				off += uint32(len(s))
			}
			base := p.server.rcvNxt
			n.b.Mgrs[p.server.core].Spawn(func(c *event.Ctx) {
				for _, idx := range tc.order {
					seg := segs[idx]
					hdr := TcpHeader{
						SrcPort: p.server.key.rport,
						DstPort: p.server.key.lport,
						Seq:     base + offs[idx],
						Ack:     p.server.sndNxt,
						DataOff: TcpHeaderLen,
						Flags:   tcpACK | tcpPSH,
						Window:  65535,
					}
					p.server.input(c, hdr, iobuf.FromBytes(seg))
				}
			})
			n.k.RunUntil(200 * sim.Millisecond)

			if !bytes.Equal(rx, whole) {
				t.Fatalf("got %q want %q", rx, whole)
			}
			if p.server.rcvNxt != base+uint32(len(whole)) {
				t.Fatalf("rcvNxt advanced to %d, want %d", p.server.rcvNxt-base, len(whole))
			}
			if len(p.server.ooo) != 0 {
				t.Fatalf("%d segments stranded in reassembly", len(p.server.ooo))
			}
		})
	}
}

// TestTcpCloseScenarios is the table-driven teardown matrix, including
// the simultaneous close where both FINs cross on the wire
// (FinWait1 -> Closing -> TimeWait on both ends).
func TestTcpCloseScenarios(t *testing.T) {
	cases := []struct {
		name string
		// closeA/closeB: when (after establishment) each side calls
		// Close; negative means that side only closes in response to the
		// peer's FIN (via OnRemoteClosed).
		closeA, closeB sim.Time
	}{
		{"client closes first", 0, -1},
		{"server closes first", -1, 0},
		{"simultaneous close", 0, 0},
		{"near-simultaneous close", 0, 100 * sim.Nanosecond},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := newTestNet(t, 1, 1)
			var errA, errB error
			closedA, closedB := false, false
			passive := func(closed *bool, errp *error) ConnHandler {
				return ConnHandler{
					OnRemoteClosed: func(c *event.Ctx, pcb *TcpPcb) { pcb.Close(c) },
					OnClosed: func(c *event.Ctx, pcb *TcpPcb, err error) {
						*closed = true
						*errp = err
					},
				}
			}
			p := establishTcp(t, n, passive(&closedA, &errA), passive(&closedB, &errB), nil)
			n.k.RunUntil(100 * sim.Millisecond)
			if p.client == nil || p.server == nil {
				t.Fatal("not established")
			}
			if tc.closeA >= 0 {
				n.a.Mgrs[p.client.core].After(tc.closeA, func(c *event.Ctx) { p.client.Close(c) })
			}
			if tc.closeB >= 0 {
				n.b.Mgrs[p.server.core].After(tc.closeB, func(c *event.Ctx) { p.server.Close(c) })
			}
			n.k.RunUntil(2 * sim.Second)

			if !closedA || !closedB {
				t.Fatalf("teardown incomplete: client=%v server=%v (states %s/%s)",
					closedA, closedB, p.client.State(), p.server.State())
			}
			if errA != nil || errB != nil {
				t.Fatalf("orderly close reported errors: client=%v server=%v", errA, errB)
			}
			for side, pcb := range map[string]*TcpPcb{"client": p.client, "server": p.server} {
				if pcb.State() != "Closed" {
					t.Fatalf("%s finished in %s, want Closed", side, pcb.State())
				}
			}
			// The connection table must be clean on both ends.
			if _, ok := n.a.Itfs[0].tcp.conns.Get(p.client.key); ok {
				t.Fatal("client pcb still in connection table")
			}
			if _, ok := n.b.Itfs[0].tcp.conns.Get(p.server.key); ok {
				t.Fatal("server pcb still in connection table")
			}
		})
	}
}

// TestTcpSimultaneousCloseTraversesClosing pins down the state path of
// the crossed-FIN case: both ends must pass through Closing (not
// CloseWait, which would mean one side saw the FIN before closing).
func TestTcpSimultaneousCloseTraversesClosing(t *testing.T) {
	n := newTestNet(t, 1, 1)
	sawClosing := map[string]bool{}
	p := establishTcp(t, n, ConnHandler{}, ConnHandler{}, nil)
	n.k.RunUntil(100 * sim.Millisecond)

	// Close both ends at the same instant; FINs cross in flight.
	n.a.Mgrs[p.client.core].After(0, func(c *event.Ctx) { p.client.Close(c) })
	n.b.Mgrs[p.server.core].After(0, func(c *event.Ctx) { p.server.Close(c) })
	// Sample states shortly after the FINs have crossed but before the
	// TimeWait expiry (propagation is sub-microsecond, TimeWait 1ms).
	n.a.Mgrs[p.client.core].After(100*sim.Microsecond, func(c *event.Ctx) {
		sawClosing["client"] = p.client.State() == "Closing" || p.client.State() == "TimeWait"
		sawClosing["server"] = p.server.State() == "Closing" || p.server.State() == "TimeWait"
	})
	n.k.RunUntil(1 * sim.Second)

	for side, ok := range sawClosing {
		if !ok {
			t.Errorf("%s did not traverse Closing/TimeWait", side)
		}
	}
	if p.client.State() != "Closed" || p.server.State() != "Closed" {
		t.Fatalf("final states %s/%s", p.client.State(), p.server.State())
	}
}

// TestTcpRetransmitBackoffResets checks that a successful ACK resets the
// exponential backoff so a later loss starts from the base RTO again.
func TestTcpRetransmitBackoffResets(t *testing.T) {
	n := newTestNet(t, 1, 1)
	// Drop two widely separated data frames; each must be recovered by a
	// single base-RTO retransmission (no residual backoff).
	n.link.DropFn = func(idx uint64, f machine.Frame) bool { return idx == 7 || idx == 15 }
	var rx []byte
	payload := []byte("0123456789abcdef0123456789abcdef")
	var p *tcpPair
	step := 0
	sendNext := func(c *event.Ctx, pcb *TcpPcb) {
		if step < 8 {
			_ = pcb.Send(c, iobuf.FromBytes(payload))
			step++
		}
	}
	p = establishTcp(t, n, ConnHandler{
		OnConnected: sendNext,
		OnAcked:     func(c *event.Ctx, pcb *TcpPcb, nAck int) { sendNext(c, pcb) },
	}, ConnHandler{}, &rx)
	n.k.RunUntil(10 * sim.Second)

	want := bytes.Repeat(payload, 8)
	if !bytes.Equal(rx, want) {
		t.Fatalf("delivered %d bytes, want %d", len(rx), len(want))
	}
	if p.client.Retransmits < 2 {
		t.Fatalf("retransmits %d, want >= 2", p.client.Retransmits)
	}
	if p.client.rtoBackoff != 0 {
		t.Fatalf("backoff %d after recovery, want 0", p.client.rtoBackoff)
	}
}
