// Package netstack is EbbRT's custom network stack (paper §3.6): Ethernet,
// ARP, IPv4, UDP, TCP and DHCP, providing an event-driven zero-copy
// interface to applications.
//
// The stack deliberately omits the BSD socket layer. Received data flows
// synchronously from the device driver through the stack into an
// application handler as an IOBuf view - no stack-side buffering, no
// copies. Transmit accepts IOBuf chains (scatter/gather). Applications
// manage their own pacing: they control the advertised receive window and
// must check the remote send window before sending, which lets them make
// their own aggregation/latency trade-offs instead of inheriting Nagle's
// algorithm.
//
// Connection state lives in an RCU hash table and each connection is
// manipulated only on the core chosen when it was established, so common
// case operations require no synchronization.
package netstack

import (
	"fmt"

	"ebbrt/internal/machine"
)

// EthAddr is an Ethernet MAC address (the machine package's MAC).
type EthAddr = machine.MAC

// EtherType values used by the stack.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// IP protocol numbers.
const (
	ProtoICMP byte = 1
	ProtoTCP  byte = 6
	ProtoUDP  byte = 17
)

// Ipv4Addr is an IPv4 address in network byte order.
type Ipv4Addr [4]byte

// IP constructs an address from octets.
func IP(a, b, c, d byte) Ipv4Addr { return Ipv4Addr{a, b, c, d} }

// String renders dotted-quad form.
func (a Ipv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Uint32 returns the address as a host-order integer.
func (a Ipv4Addr) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// IPFromUint32 converts a host-order integer to an address.
func IPFromUint32(v uint32) Ipv4Addr {
	return Ipv4Addr{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// IsBroadcast reports whether the address is the limited broadcast.
func (a Ipv4Addr) IsBroadcast() bool { return a == Ipv4Addr{255, 255, 255, 255} }

// IsZero reports whether the address is the unspecified 0.0.0.0.
func (a Ipv4Addr) IsZero() bool { return a == Ipv4Addr{} }

// SameSubnet reports whether two addresses share a network under the mask.
func SameSubnet(a, b, mask Ipv4Addr) bool {
	for i := range a {
		if a[i]&mask[i] != b[i]&mask[i] {
			return false
		}
	}
	return true
}

// Checksum computes the Internet checksum (RFC 1071) over data with an
// initial partial sum, for chaining across pseudo-headers.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// FlowHash computes the symmetric flow hash used for receive-side scaling.
// It is symmetric in (addr,port) pairs so both directions of a connection
// hash to the same queue on their respective NICs, modeling the symmetric
// Toeplitz configuration used for connection-to-core affinity.
func FlowHash(aIP Ipv4Addr, aPort uint16, bIP Ipv4Addr, bPort uint16) uint32 {
	x := uint64(aIP.Uint32())<<16 | uint64(aPort)
	y := uint64(bIP.Uint32())<<16 | uint64(bPort)
	// Symmetric combine.
	s := x + y
	p := x ^ y
	h := s*0x9e3779b97f4a7c15 ^ p*0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return uint32(h)
}
