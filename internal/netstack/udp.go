package netstack

import (
	"encoding/binary"
	"fmt"

	"ebbrt/internal/event"
	"ebbrt/internal/future"
	"ebbrt/internal/iobuf"
)

// UdpHandler receives one datagram's payload, synchronously from the
// driver. An overwhelmed application simply drops - the stack provides no
// buffering (paper §3.6).
type UdpHandler func(c *event.Ctx, src Ipv4Addr, srcPort uint16, payload *iobuf.IOBuf)

// udpLayer is an interface's UDP port table.
type udpLayer struct {
	itf      *Interface
	handlers map[uint16]UdpHandler
	nextPort uint16
}

func newUdpLayer() *udpLayer {
	return &udpLayer{handlers: map[uint16]UdpHandler{}, nextPort: 49152}
}

// BindUdp installs a datagram handler on a port. Port 0 picks an ephemeral
// port. The bound port is returned.
func (itf *Interface) BindUdp(port uint16, h UdpHandler) (uint16, error) {
	u := itf.udp
	if port == 0 {
		for {
			port = u.nextPort
			u.nextPort++
			if u.nextPort == 0 {
				u.nextPort = 49152
			}
			if _, used := u.handlers[port]; !used {
				break
			}
		}
	}
	if _, used := u.handlers[port]; used {
		return 0, fmt.Errorf("netstack: udp port %d in use", port)
	}
	u.handlers[port] = h
	return port, nil
}

// UnbindUdp removes a datagram handler.
func (itf *Interface) UnbindUdp(port uint16) { delete(itf.udp.handlers, port) }

func (u *udpLayer) receive(c *event.Ctx, ip Ipv4Header, buf *iobuf.IOBuf) {
	hdr, err := parseUdp(buf.Data())
	if err != nil {
		return
	}
	h, ok := u.handlers[hdr.DstPort]
	if !ok {
		return // no listener: drop (ICMP port-unreachable omitted)
	}
	payloadView(buf, UdpHeaderLen)
	if want := int(hdr.Length) - UdpHeaderLen; want >= 0 && want < buf.ComputeChainDataLength() {
		trimChainEnd(buf, buf.ComputeChainDataLength()-want)
	}
	c.Charge(u.itf.St.Cfg.AppDeliverCPU)
	h(c, ip.Src, hdr.SrcPort, buf)
}

// SendUdp transmits payload as one datagram. The payload chain is consumed.
func (itf *Interface) SendUdp(c *event.Ctx, srcPort uint16, dst Ipv4Addr, dstPort uint16, payload *iobuf.IOBuf) future.Future[future.Unit] {
	payloadLen := payload.ComputeChainDataLength()
	hdr := iobuf.New(Ipv4HeaderLen + UdpHeaderLen)
	ipb := hdr.Append(Ipv4HeaderLen)
	udpb := hdr.Append(UdpHeaderLen)
	writeIpv4(ipb, Ipv4Header{
		TotalLen: uint16(Ipv4HeaderLen + UdpHeaderLen + payloadLen),
		TTL:      64,
		Proto:    ProtoUDP,
		Src:      itf.Addr,
		Dst:      dst,
	})
	writeUdp(udpb, UdpHeader{SrcPort: srcPort, DstPort: dstPort, Length: uint16(UdpHeaderLen + payloadLen)})
	hdr.AppendChain(payload)
	hash := FlowHash(itf.Addr, srcPort, dst, dstPort)
	return itf.EthArpSend(c, EtherTypeIPv4, dst, hdr, hash)
}

// putUint16 is a tiny helper for tests building raw packets.
func putUint16(b []byte, v uint16) { binary.BigEndian.PutUint16(b, v) }
