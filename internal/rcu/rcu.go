// Package rcu implements read-copy-update synchronization and an RCU hash
// table (paper §3.6, §4.2).
//
// EbbRT's event-driven execution makes RCU a natural primitive: without
// preemption, entering and exiting a read-side critical section costs
// nothing, and grace periods align with event boundaries. The network
// stack keeps connection state in an RCU hash table so common-case lookups
// proceed without atomic operations on shared cache lines, and the
// memcached port stores key-value pairs the same way to avoid lock
// contention.
//
// This implementation is also correct under real goroutine parallelism
// (the hosted environment and the test suite's race-detector runs):
// readers publish their epoch with release/acquire atomics, and writers
// wait for a grace period with Synchronize.
package rcu

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Domain tracks a set of readers for grace-period detection. The zero
// value is not usable; call NewDomain.
type Domain struct {
	epoch   atomic.Uint64
	mu      sync.Mutex // registration and Synchronize serialization
	readers []*Reader
}

// NewDomain returns an empty RCU domain at epoch 1.
func NewDomain() *Domain {
	d := &Domain{}
	d.epoch.Store(1)
	return d
}

// Reader is one registered read-side context (a core in the native
// environment, a goroutine in the hosted one).
type Reader struct {
	// state is 0 when quiescent, else the epoch observed at Lock.
	state atomic.Uint64
	_     [56]byte // pad to a cache line to avoid false sharing
}

// Register adds a reader to the domain.
func (d *Domain) Register() *Reader {
	r := &Reader{}
	d.mu.Lock()
	d.readers = append(d.readers, r)
	d.mu.Unlock()
	return r
}

// Lock enters a read-side critical section. Under the non-preemptive event
// model this is one store to a core-local line - the "no cost" property
// the paper highlights.
func (r *Reader) Lock() { r.state.Store(r.stateEpoch()) }

func (r *Reader) stateEpoch() uint64 { return domainEpochHint.Load() }

// domainEpochHint lets Lock avoid a pointer back to the domain; all
// domains share the hint counter, which only ever needs to be a recent
// lower bound of any domain's epoch for correctness (a reader stamped with
// an older epoch simply delays the grace period by one check round).
var domainEpochHint atomic.Uint64

func init() { domainEpochHint.Store(1) }

// Unlock exits the read-side critical section.
func (r *Reader) Unlock() { r.state.Store(0) }

// Synchronize waits until every reader that was inside a critical section
// when it was called has exited: a grace period. Writers call it after
// unpublishing data and before reclaiming it.
func (d *Domain) Synchronize() {
	d.mu.Lock()
	defer d.mu.Unlock()
	newEpoch := d.epoch.Add(1)
	domainEpochHint.Add(1)
	for _, r := range d.readers {
		for {
			s := r.state.Load()
			if s == 0 || s >= newEpoch {
				break
			}
			runtime.Gosched()
		}
	}
}

// Epoch reports the current epoch (for tests).
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }
