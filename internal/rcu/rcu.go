// Package rcu implements read-copy-update synchronization and an RCU hash
// table (paper §3.6, §4.2).
//
// EbbRT's event-driven execution makes RCU a natural primitive: without
// preemption, entering and exiting a read-side critical section costs
// nothing, and grace periods align with event boundaries. The network
// stack keeps connection state in an RCU hash table so common-case lookups
// proceed without atomic operations on shared cache lines, and the
// memcached port stores key-value pairs the same way to avoid lock
// contention.
//
// This implementation is also correct under real goroutine parallelism
// (the hosted environment and the test suite's race-detector runs):
// readers publish their epoch with release/acquire atomics, and writers
// wait for a grace period with Synchronize.
package rcu

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Domain tracks a set of readers for grace-period detection. The zero
// value is not usable; call NewDomain.
type Domain struct {
	epoch   atomic.Uint64
	mu      sync.Mutex // registration and Synchronize serialization
	readers []*Reader
}

// NewDomain returns an empty RCU domain at epoch 1.
func NewDomain() *Domain {
	d := &Domain{}
	d.epoch.Store(1)
	return d
}

// Reader is one registered read-side context (a core in the native
// environment, a goroutine in the hosted one).
type Reader struct {
	// state is 0 when quiescent, else the epoch observed at Lock.
	state atomic.Uint64
	_     [56]byte // pad to a cache line to avoid false sharing
}

// Register adds a reader to the domain.
func (d *Domain) Register() *Reader {
	r := &Reader{}
	d.mu.Lock()
	d.readers = append(d.readers, r)
	d.mu.Unlock()
	return r
}

// Lock enters a read-side critical section. Under the non-preemptive event
// model this is one store to a core-local line - the "no cost" property
// the paper highlights.
func (r *Reader) Lock() { r.state.Store(r.stateEpoch()) }

func (r *Reader) stateEpoch() uint64 { return domainEpochHint.Load() }

// domainEpochHint lets Lock avoid a pointer back to the domain; all
// domains share the hint counter, and Synchronize draws its grace-period
// epoch from the SAME counter. The two must not diverge: comparing a
// reader's globally-stamped epoch against a domain-local one let a
// reader stamped by a busier domain's higher epoch masquerade as having
// entered after the grace period, and Synchronize would skip a reader
// still inside its critical section (exposed by shuffled test order;
// equally reachable by any process with two domains, e.g. two RCU
// tables).
var domainEpochHint atomic.Uint64

func init() { domainEpochHint.Store(1) }

// Unlock exits the read-side critical section.
func (r *Reader) Unlock() { r.state.Store(0) }

// Synchronize waits until every reader that was inside a critical section
// when it was called has exited: a grace period. Writers call it after
// unpublishing data and before reclaiming it.
func (d *Domain) Synchronize() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.epoch.Add(1)
	// The grace-period boundary is the shared hint counter - the value
	// readers stamp themselves with. A reader observed at or above
	// newEpoch locked after this increment, hence after the caller
	// unpublished, and holds no stale reference.
	newEpoch := domainEpochHint.Add(1)
	for _, r := range d.readers {
		for {
			s := r.state.Load()
			if s == 0 || s >= newEpoch {
				break
			}
			runtime.Gosched()
		}
	}
}

// Epoch reports the current epoch (for tests).
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }
