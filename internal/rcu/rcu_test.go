package rcu

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSynchronizeWaitsForReader(t *testing.T) {
	d := NewDomain()
	r := d.Register()
	r.Lock()
	done := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		close(entered)
		d.Synchronize()
		close(done)
	}()
	<-entered
	select {
	case <-done:
		t.Fatal("Synchronize returned while reader inside critical section")
	default:
	}
	r.Unlock()
	<-done
}

// TestSynchronizeWaitsAcrossDomains: readers stamp themselves with the
// process-wide epoch hint, so a domain whose neighbor has synchronized
// many times must still wait for its own in-section readers. (The old
// domain-local grace-period comparison returned immediately here,
// reclaiming under a live reader.)
func TestSynchronizeWaitsAcrossDomains(t *testing.T) {
	busy := NewDomain()
	for i := 0; i < 100; i++ {
		busy.Synchronize()
	}
	d := NewDomain()
	r := d.Register()
	r.Lock()
	done := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		close(entered)
		d.Synchronize()
		close(done)
	}()
	<-entered
	select {
	case <-done:
		t.Fatal("Synchronize returned while reader inside critical section")
	default:
	}
	r.Unlock()
	<-done
}

func TestSynchronizeIgnoresQuiescentReaders(t *testing.T) {
	d := NewDomain()
	d.Register() // never locks
	d.Synchronize()
}

func TestSynchronizeIgnoresNewReaders(t *testing.T) {
	d := NewDomain()
	r := d.Register()
	// Reader enters *after* the epoch bump: lock with fresh epoch while
	// Synchronize runs must not deadlock.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			r.Lock()
			r.Unlock()
		}
	}()
	for i := 0; i < 100; i++ {
		d.Synchronize()
	}
	wg.Wait()
}

func TestGracePeriodStress(t *testing.T) {
	d := NewDomain()
	var inCrit atomic.Int64
	var maxSeen atomic.Int64
	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		r := d.Register()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Lock()
				inCrit.Add(1)
				inCrit.Add(-1)
				r.Unlock()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		d.Synchronize()
		if v := inCrit.Load(); v > maxSeen.Load() {
			maxSeen.Store(v)
		}
	}
	close(stop)
	wg.Wait()
}

func TestTableBasics(t *testing.T) {
	tb := NewTable[string, int](StringHash, 4)
	if _, ok := tb.Get("missing"); ok {
		t.Fatal("found missing key")
	}
	tb.Put("a", 1)
	tb.Put("b", 2)
	if v, ok := tb.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	tb.Put("a", 10)
	if v, _ := tb.Get("a"); v != 10 {
		t.Fatalf("replace failed: %d", v)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if !tb.Delete("a") {
		t.Fatal("delete reported absent")
	}
	if tb.Delete("a") {
		t.Fatal("double delete reported present")
	}
	if _, ok := tb.Get("a"); ok {
		t.Fatal("deleted key still visible")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestTableResize(t *testing.T) {
	tb := NewTable[string, int](StringHash, 4)
	const n = 10000
	for i := 0; i < n; i++ {
		tb.Put(fmt.Sprintf("key%d", i), i)
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d", tb.Len())
	}
	for i := 0; i < n; i++ {
		if v, ok := tb.Get(fmt.Sprintf("key%d", i)); !ok || v != i {
			t.Fatalf("key%d = %d, %v after resize", i, v, ok)
		}
	}
}

func TestTableForEach(t *testing.T) {
	tb := NewTable[string, int](StringHash, 4)
	for i := 0; i < 10; i++ {
		tb.Put(fmt.Sprintf("k%d", i), i)
	}
	sum := 0
	tb.ForEach(func(k string, v int) bool {
		sum += v
		return true
	})
	if sum != 45 {
		t.Fatalf("sum = %d", sum)
	}
	visits := 0
	tb.ForEach(func(string, int) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatal("ForEach did not stop early")
	}
}

func TestTableConcurrentReadersWriters(t *testing.T) {
	tb := NewTable[uint64, uint64](Uint64Hash, 16)
	const keys = 512
	for i := uint64(0); i < keys; i++ {
		tb.Put(i, i*100)
	}
	stop := make(chan struct{})
	var readers, writers sync.WaitGroup
	// Readers: values must always be either absent or self-consistent.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			x := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				x = x*6364136223846793005 + 1
				k := x % keys
				if v, ok := tb.Get(k); ok && v != k*100 && v != k*100+1 {
					t.Errorf("key %d has torn value %d", k, v)
					return
				}
			}
		}(uint64(r + 1))
	}
	// Writers: flip values, delete and reinsert.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			x := seed
			for i := 0; i < 20000; i++ {
				x = x*6364136223846793005 + 1
				k := x % keys
				switch x % 3 {
				case 0:
					tb.Put(k, k*100)
				case 1:
					tb.Put(k, k*100+1)
				case 2:
					tb.Delete(k)
					tb.Put(k, k*100)
				}
			}
		}(uint64(w + 99))
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

// Property: the table agrees with a plain map under any sequence of
// single-threaded operations.
func TestTableMatchesMapProperty(t *testing.T) {
	prop := func(ops []struct {
		K  uint8
		V  uint16
		Op uint8
	}) bool {
		tb := NewTable[uint64, uint16](Uint64Hash, 4)
		ref := map[uint64]uint16{}
		for _, o := range ops {
			k := uint64(o.K % 32)
			switch o.Op % 3 {
			case 0, 1:
				tb.Put(k, o.V)
				ref[k] = o.V
			case 2:
				got := tb.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			}
		}
		if tb.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := tb.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHashes(t *testing.T) {
	if StringHash("a") == StringHash("b") {
		t.Fatal("trivial string hash collision")
	}
	if Uint64Hash(1) == Uint64Hash(2) {
		t.Fatal("trivial int hash collision")
	}
}
