package rcu

import (
	"sync"
	"sync/atomic"
)

// Table is a resizable RCU hash table. Lookups are lock-free and perform
// no writes to shared memory; inserts and deletes serialize on a writer
// lock and publish with atomic stores, so readers always observe a
// consistent chain. Removed nodes keep their forward pointers intact (the
// classic RCU unlink), and superseded bucket arrays are reclaimed by the
// garbage collector after readers move on.
type Table[K comparable, V any] struct {
	hash func(K) uint64
	mu   sync.Mutex // writers
	bkts atomic.Pointer[buckets[K, V]]
	n    int // entries, writer-locked
}

type buckets[K comparable, V any] struct {
	bins []atomic.Pointer[node[K, V]]
	mask uint64
}

type node[K comparable, V any] struct {
	key  K
	val  V
	next atomic.Pointer[node[K, V]]
}

// NewTable creates a table with the given hash function and initial
// bucket-count hint (rounded up to a power of two).
func NewTable[K comparable, V any](hash func(K) uint64, hint int) *Table[K, V] {
	size := 16
	for size < hint {
		size *= 2
	}
	t := &Table[K, V]{hash: hash}
	t.bkts.Store(&buckets[K, V]{bins: make([]atomic.Pointer[node[K, V]], size), mask: uint64(size - 1)})
	return t
}

// Get looks up key without locks or shared-memory writes.
func (t *Table[K, V]) Get(key K) (V, bool) {
	b := t.bkts.Load()
	h := t.hash(key)
	for n := b.bins[h&b.mask].Load(); n != nil; n = n.next.Load() {
		if n.key == key {
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for key. Replacement is
// copy-on-update: a fresh node supersedes the old one so concurrent
// readers see either the old or the new value, never a torn mix.
func (t *Table[K, V]) Put(key K, val V) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.bkts.Load()
	h := t.hash(key)
	bin := &b.bins[h&b.mask]

	// Replace in place (copy node, splice) if present.
	var prev *node[K, V]
	for n := bin.Load(); n != nil; n = n.next.Load() {
		if n.key == key {
			repl := &node[K, V]{key: key, val: val}
			repl.next.Store(n.next.Load())
			if prev == nil {
				bin.Store(repl)
			} else {
				prev.next.Store(repl)
			}
			return
		}
		prev = n
	}
	// Insert at head.
	nn := &node[K, V]{key: key, val: val}
	nn.next.Store(bin.Load())
	bin.Store(nn)
	t.n++
	if t.n > len(b.bins)*2 {
		t.resizeLocked(b)
	}
}

// PutIfAbsent inserts the value only if key is not present, reporting
// whether it inserted. Memcached's ADD semantics; bulk loaders use it so
// a concurrent fresh write is never overwritten by older data.
func (t *Table[K, V]) PutIfAbsent(key K, val V) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.bkts.Load()
	h := t.hash(key)
	bin := &b.bins[h&b.mask]
	for n := bin.Load(); n != nil; n = n.next.Load() {
		if n.key == key {
			return false
		}
	}
	nn := &node[K, V]{key: key, val: val}
	nn.next.Store(bin.Load())
	bin.Store(nn)
	t.n++
	if t.n > len(b.bins)*2 {
		t.resizeLocked(b)
	}
	return true
}

// Delete removes key, reporting whether it was present.
func (t *Table[K, V]) Delete(key K) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.bkts.Load()
	h := t.hash(key)
	bin := &b.bins[h&b.mask]
	var prev *node[K, V]
	for n := bin.Load(); n != nil; n = n.next.Load() {
		if n.key == key {
			// RCU unlink: n keeps its next pointer so in-flight readers
			// traversing through n still reach the rest of the chain.
			if prev == nil {
				bin.Store(n.next.Load())
			} else {
				prev.next.Store(n.next.Load())
			}
			t.n--
			return true
		}
		prev = n
	}
	return false
}

// Len reports the entry count (writer-accurate; concurrent readers may see
// it lag by in-flight operations).
func (t *Table[K, V]) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// ForEach visits entries under the writer lock (administrative scans).
func (t *Table[K, V]) ForEach(fn func(K, V) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.bkts.Load()
	for i := range b.bins {
		for n := b.bins[i].Load(); n != nil; n = n.next.Load() {
			if !fn(n.key, n.val) {
				return
			}
		}
	}
}

// resizeLocked doubles the bucket array and publishes it atomically.
// Readers concurrently traversing the old array still see valid chains.
func (t *Table[K, V]) resizeLocked(old *buckets[K, V]) {
	nb := &buckets[K, V]{
		bins: make([]atomic.Pointer[node[K, V]], len(old.bins)*2),
		mask: uint64(len(old.bins)*2 - 1),
	}
	for i := range old.bins {
		for n := old.bins[i].Load(); n != nil; n = n.next.Load() {
			h := t.hash(n.key)
			copyN := &node[K, V]{key: n.key, val: n.val}
			copyN.next.Store(nb.bins[h&nb.mask].Load())
			nb.bins[h&nb.mask].Store(copyN)
		}
	}
	t.bkts.Store(nb)
}

// StringHash is an FNV-1a hash for string keys.
func StringHash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Uint64Hash mixes an integer key (splitmix64 finalizer).
func Uint64Hash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
