// Package sim provides the deterministic discrete-event simulation substrate
// on which the EbbRT reproduction runs: a virtual-time event kernel, a
// seedable random number generator, and latency statistics.
//
// All macro-experiments in the paper (Figures 4-7, Table 2) execute on this
// kernel so that results are exactly reproducible run-to-run. Virtual time
// is measured in nanoseconds and stored as an int64, which covers simulations
// of roughly 292 years - far beyond anything the harnesses schedule.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common virtual-time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a standard library duration to virtual nanoseconds.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Std converts a virtual time span back to a standard library duration.
func (t Time) Std() time.Duration { return time.Duration(t) }

// Micros reports t as fractional microseconds, convenient for experiment
// output that mirrors the paper's latency tables.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// String renders the time with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Micros()) }

// Event is a scheduled callback. It may be cancelled before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	heapIdx  int
	canceled bool
	fired    bool
}

// At reports the virtual time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was still pending.
func (e *Event) Cancel() bool {
	if e.canceled || e.fired {
		return false
	}
	e.canceled = true
	return true
}

// Kernel is a single-threaded discrete-event executor. Events scheduled for
// the same instant fire in scheduling order (FIFO), making every simulation
// deterministic. Kernel is not safe for concurrent use; the event package
// layers deterministic coroutine blocking on top of it.
type Kernel struct {
	now   Time
	seq   uint64
	queue eventHeap
	// fired counts events executed; useful for debugging runaway loops.
	fired uint64
}

// NewKernel returns an empty kernel at virtual time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of events that are scheduled and not cancelled.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.queue {
		if !e.canceled {
			n++
		}
	}
	return n
}

// Fired reports how many events have executed since the kernel was created.
func (k *Kernel) Fired() uint64 { return k.fired }

// At schedules fn to run at virtual time t. Scheduling in the past is a
// programming error and panics: it would silently reorder causality.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	e := &Event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d nanoseconds of virtual time from now.
// Negative delays are clamped to zero.
func (k *Kernel) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Step executes the earliest pending event, advancing virtual time to its
// timestamp. It reports false when no events remain.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.canceled {
			continue
		}
		k.now = e.at
		e.fired = true
		k.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t (even if the queue drained earlier).
func (k *Kernel) RunUntil(t Time) {
	for len(k.queue) > 0 {
		e := k.peek()
		if e == nil || e.at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunFor executes events for d nanoseconds of virtual time from now.
func (k *Kernel) RunFor(d Time) { k.RunUntil(k.now + d) }

func (k *Kernel) peek() *Event {
	for len(k.queue) > 0 {
		e := k.queue[0]
		if e.canceled {
			heap.Pop(&k.queue)
			continue
		}
		return e
	}
	return nil
}

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.heapIdx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
