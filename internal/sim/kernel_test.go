package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("Now = %v, want 30", k.Now())
	}
}

func TestKernelFIFOAtSameInstant(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(10, func() { fired = true })
	if !e.Cancel() {
		t.Fatal("Cancel of pending event returned false")
	}
	if e.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", k.Pending())
	}
}

func TestKernelCancelAfterFire(t *testing.T) {
	k := NewKernel()
	e := k.At(1, func() {})
	k.Run()
	if e.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.At(10, func() {
		k.After(5, func() { times = append(times, k.Now()) })
	})
	k.Run()
	if len(times) != 1 || times[0] != 15 {
		t.Fatalf("nested event at %v, want [15]", times)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 10 only", fired)
	}
	if k.Now() != 12 {
		t.Fatalf("Now = %v, want 12", k.Now())
	}
	k.RunFor(8)
	if len(fired) != 4 || k.Now() != 20 {
		t.Fatalf("after RunFor: fired=%v now=%v", fired, k.Now())
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k := NewKernel()
	k.At(10, func() { k.At(5, func() {}) })
	k.Run()
}

func TestKernelNegativeAfterClamps(t *testing.T) {
	k := NewKernel()
	fired := false
	k.At(10, func() { k.After(-5, func() { fired = true }) })
	k.Run()
	if !fired {
		t.Fatal("clamped event did not fire")
	}
}

func TestDurationConversions(t *testing.T) {
	if Duration(3*time.Microsecond) != 3*Microsecond {
		t.Fatal("Duration conversion wrong")
	}
	if (2 * Millisecond).Std() != 2*time.Millisecond {
		t.Fatal("Std conversion wrong")
	}
	if (1500 * Nanosecond).Micros() != 1.5 {
		t.Fatal("Micros conversion wrong")
	}
}

// Property: for any batch of non-negative delays, events fire in
// non-decreasing time order and the count matches.
func TestKernelOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, d := range delays {
			k.After(Time(d), func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
