package sim

import "math"

// Rng is a small, fast, deterministic random number generator
// (splitmix64-seeded xoshiro256**). Every workload generator takes an
// explicit *Rng so experiments are reproducible byte-for-byte.
type Rng struct {
	s [4]uint64
}

// NewRng returns a generator seeded from the given value via splitmix64,
// which guarantees a well-mixed non-zero state for any seed.
func NewRng(seed uint64) *Rng {
	r := &Rng{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rng) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
func (r *Rng) IntRange(lo, hi int) int {
	if hi < lo {
		panic("sim: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Exp returns an exponentially distributed value with the given mean,
// used for Poisson inter-arrival times in the open-loop load generators.
func (r *Rng) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rng) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Zipf samples from a Zipf-like distribution over [0, n) with skew s > 1
// using rejection-inversion (Hormann & Derflinger). The mutilate workload
// generator uses it for key popularity, mirroring the heavy-tailed access
// pattern of the Facebook ETC trace.
type Zipf struct {
	r           *Rng
	n           float64
	s           float64
	oneMinusS   float64
	hIntegralX1 float64
	hIntegralN  float64
	sDiv        float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s (s != 1, s > 0).
func NewZipf(r *Rng, s float64, n int) *Zipf {
	if n <= 0 || s <= 0 || s == 1 {
		panic("sim: invalid Zipf parameters")
	}
	z := &Zipf{r: r, n: float64(n), s: s, oneMinusS: 1 - s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(z.n + 0.5)
	z.sDiv = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusS*logX) * logX
}

func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}

// Next samples a value in [0, n).
func (z *Zipf) Next() int {
	for {
		u := z.hIntegralN + z.r.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.sDiv || u >= z.hIntegral(k+0.5)-z.h(k) {
			return int(k) - 1
		}
	}
}
