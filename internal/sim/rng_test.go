package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRngDeterminism(t *testing.T) {
	a, b := NewRng(42), NewRng(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRng(43)
	same := 0
	a = NewRng(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRngFloat64Range(t *testing.T) {
	r := NewRng(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRngIntnRange(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		nn := int(n%100) + 1
		r := NewRng(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(nn)
			if v < 0 || v >= nn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRngIntRange(t *testing.T) {
	r := NewRng(7)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(20, 70)
		if v < 20 || v > 70 {
			t.Fatalf("IntRange = %d out of [20,70]", v)
		}
	}
}

func TestRngExpMean(t *testing.T) {
	r := NewRng(9)
	const mean = 50.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestRngPerm(t *testing.T) {
	r := NewRng(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := NewRng(11)
	z := NewZipf(r, 1.1, 1000)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf value %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must be the most popular and dramatically more popular than
	// the median rank for a skewed distribution.
	if counts[0] < counts[500]*10 {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func TestZipfInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(s=1) did not panic")
		}
	}()
	NewZipf(NewRng(1), 1.0, 10)
}
