package sim

import (
	"fmt"
	"math"
	"sort"
)

// Recorder accumulates latency samples (virtual nanoseconds) and computes
// the statistics the paper reports: mean and tail percentiles.
type Recorder struct {
	samples []int64
	sorted  bool
	sum     float64
}

// NewRecorder returns an empty recorder, optionally pre-sized.
func NewRecorder(capacityHint int) *Recorder {
	return &Recorder{samples: make([]int64, 0, capacityHint)}
}

// Add records one sample.
func (r *Recorder) Add(v Time) {
	r.samples = append(r.samples, int64(v))
	r.sum += float64(v)
	r.sorted = false
}

// Count reports the number of samples recorded.
func (r *Recorder) Count() int { return len(r.samples) }

// Mean reports the arithmetic mean, or 0 with no samples.
func (r *Recorder) Mean() Time {
	if len(r.samples) == 0 {
		return 0
	}
	return Time(r.sum / float64(len(r.samples)))
}

// Percentile reports the p-th percentile (p in [0,100]) using
// nearest-rank interpolation, or 0 with no samples.
func (r *Recorder) Percentile(p float64) Time {
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	r.ensureSorted()
	if p <= 0 {
		return Time(r.samples[0])
	}
	if p >= 100 {
		return Time(r.samples[n-1])
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return Time(r.samples[lo])
	}
	frac := rank - float64(lo)
	return Time(float64(r.samples[lo])*(1-frac) + float64(r.samples[hi])*frac)
}

// Max reports the largest sample, or 0 with no samples.
func (r *Recorder) Max() Time {
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	return Time(r.samples[len(r.samples)-1])
}

// Min reports the smallest sample, or 0 with no samples.
func (r *Recorder) Min() Time {
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	return Time(r.samples[0])
}

// Reset discards all samples, retaining capacity.
func (r *Recorder) Reset() {
	r.samples = r.samples[:0]
	r.sum = 0
	r.sorted = false
}

// Summary renders "mean=Xus p50=Xus p99=Xus n=N" for experiment logs.
func (r *Recorder) Summary() string {
	return fmt.Sprintf("mean=%.1fus p50=%.1fus p99=%.1fus max=%.1fus n=%d",
		r.Mean().Micros(), r.Percentile(50).Micros(),
		r.Percentile(99).Micros(), r.Max().Micros(), r.Count())
}

func (r *Recorder) ensureSorted() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}

// Counter is a labelled monotonic counter used for throughput accounting.
type Counter struct {
	Name string
	N    uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.N++ }

// AddN adds n to the counter.
func (c *Counter) AddN(n uint64) { c.N += n }
