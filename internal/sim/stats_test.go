package sim

import (
	"testing"
	"testing/quick"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(0)
	if r.Mean() != 0 || r.Percentile(99) != 0 || r.Max() != 0 || r.Min() != 0 {
		t.Fatal("empty recorder should report zeros")
	}
	for i := 1; i <= 100; i++ {
		r.Add(Time(i * 1000))
	}
	if r.Count() != 100 {
		t.Fatalf("Count = %d", r.Count())
	}
	if got := r.Mean(); got != Time(50500) {
		t.Fatalf("Mean = %v, want 50500", got)
	}
	if got := r.Min(); got != 1000 {
		t.Fatalf("Min = %v", got)
	}
	if got := r.Max(); got != 100000 {
		t.Fatalf("Max = %v", got)
	}
	p50 := r.Percentile(50)
	if p50 < 50000 || p50 > 51000 {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := r.Percentile(99)
	if p99 < 99000 || p99 > 100000 {
		t.Fatalf("p99 = %v", p99)
	}
}

func TestRecorderAddAfterQuery(t *testing.T) {
	r := NewRecorder(0)
	r.Add(10)
	_ = r.Percentile(50)
	r.Add(5)
	if r.Min() != 5 {
		t.Fatal("recorder did not re-sort after post-query Add")
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(0)
	r.Add(10)
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 {
		t.Fatal("Reset did not clear")
	}
}

// Property: percentiles are monotone in p and bounded by [Min, Max].
func TestRecorderPercentileMonotone(t *testing.T) {
	prop := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		r := NewRecorder(len(vals))
		for _, v := range vals {
			r.Add(Time(v))
		}
		prev := r.Percentile(0)
		if prev != r.Min() {
			return false
		}
		for p := 5.0; p <= 100; p += 5 {
			cur := r.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return prev == r.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "rx"}
	c.Inc()
	c.AddN(4)
	if c.N != 5 {
		t.Fatalf("Counter = %d, want 5", c.N)
	}
}
