// Package testbed assembles the experiment topologies of the paper's
// evaluation (§4): a client machine directly connected over a 10GbE link
// to a server machine running one of the systems under test.
package testbed

import (
	"fmt"

	"ebbrt/internal/apps/appnet"
	"ebbrt/internal/event"
	"ebbrt/internal/gpos"
	"ebbrt/internal/machine"
	"ebbrt/internal/netstack"
	"ebbrt/internal/sim"
)

// ServerKind selects the system under test on the server machine.
type ServerKind int

// The systems compared in Figures 4-6 and Table 2.
const (
	EbbRT ServerKind = iota
	LinuxVM
	LinuxNative
	OSv
)

// String names the kind as in the paper's legends.
func (k ServerKind) String() string {
	switch k {
	case EbbRT:
		return "EbbRT"
	case LinuxVM:
		return "Linux"
	case LinuxNative:
		return "Linux Native"
	case OSv:
		return "OSV"
	}
	return fmt.Sprintf("ServerKind(%d)", int(k))
}

// Addresses used by the standard two-machine topology.
var (
	ClientIP = netstack.IP(10, 0, 0, 1)
	ServerIP = netstack.IP(10, 0, 0, 2)
	netMask  = netstack.IP(255, 255, 255, 0)
)

// Pair is a client/server testbed.
type Pair struct {
	K      *sim.Kernel
	Client appnet.Runtime
	Server appnet.Runtime
	Link   *machine.Link
}

// NewPair builds the two-machine topology with the chosen server system.
// clientCores should comfortably exceed the server's so the load generator
// is never the bottleneck (the paper uses a 20-core client).
func NewPair(kind ServerKind, serverCores, clientCores int) *Pair {
	k := sim.NewKernel()

	// Client: an unvirtualized machine running the fast native runtime -
	// the load generator is infrastructure, identical across experiments.
	cliCfg := machine.DefaultConfig("client", clientCores)
	cliCfg.Virtualized = false
	cliM := machine.New(k, cliCfg)
	cliNIC := machine.NewNIC(cliM, machine.MAC{0x02, 0, 0, 0, 0, 1})

	srvCfg := machine.DefaultConfig("server", serverCores)
	switch kind {
	case LinuxNative:
		srvCfg.Virtualized = false
	case OSv:
		srvCfg.NICQueues = 1 // OSv's virtio-net lacked multiqueue (paper §4.2)
	}
	srvM := machine.New(k, srvCfg)
	srvNIC := machine.NewNIC(srvM, machine.MAC{0x02, 0, 0, 0, 0, 2})

	link := machine.NewLink(k, cliNIC, srvNIC)

	cliMgrs := managers(cliM)
	cliStack := netstack.NewStack(cliM, cliMgrs, netstack.DefaultConfig())
	cliItf := cliStack.AddInterface(cliNIC, ClientIP, netMask)
	client := appnet.NewNative(cliStack, cliItf)
	client.RuntimeName = "client"

	srvMgrs := managers(srvM)
	var server appnet.Runtime
	switch kind {
	case EbbRT:
		st := netstack.NewStack(srvM, srvMgrs, netstack.DefaultConfig())
		itf := st.AddInterface(srvNIC, ServerIP, netMask)
		server = appnet.NewNative(st, itf)
	case LinuxVM, LinuxNative:
		server = gpos.NewRuntime(srvM, srvMgrs, netstack.DefaultConfig(), gpos.LinuxConfig(), srvNIC, ServerIP, netMask)
	case OSv:
		server = gpos.NewRuntime(srvM, srvMgrs, netstack.DefaultConfig(), gpos.OSvConfig(), srvNIC, ServerIP, netMask)
	}

	return &Pair{K: k, Client: client, Server: server, Link: link}
}

// NewSymmetricPair builds a topology with the *same* system on both ends,
// as the NetPIPE experiment requires ("in all cases, we run the same
// system on both ends").
func NewSymmetricPair(kind ServerKind, cores int) *Pair {
	k := sim.NewKernel()
	build := func(name string, mac byte, ip netstack.Ipv4Addr) (appnet.Runtime, *machine.NIC) {
		cfg := machine.DefaultConfig(name, cores)
		if kind == LinuxNative {
			cfg.Virtualized = false
		}
		if kind == OSv {
			cfg.NICQueues = 1
		}
		m := machine.New(k, cfg)
		nic := machine.NewNIC(m, machine.MAC{0x02, 0, 0, 0, 0, mac})
		mgrs := managers(m)
		switch kind {
		case EbbRT:
			st := netstack.NewStack(m, mgrs, netstack.DefaultConfig())
			itf := st.AddInterface(nic, ip, netMask)
			return appnet.NewNative(st, itf), nic
		case OSv:
			return gpos.NewRuntime(m, mgrs, netstack.DefaultConfig(), gpos.OSvConfig(), nic, ip, netMask), nic
		default:
			return gpos.NewRuntime(m, mgrs, netstack.DefaultConfig(), gpos.LinuxConfig(), nic, ip, netMask), nic
		}
	}
	client, cliNIC := build("client", 1, ClientIP)
	server, srvNIC := build("server", 2, ServerIP)
	link := machine.NewLink(k, cliNIC, srvNIC)
	return &Pair{K: k, Client: client, Server: server, Link: link}
}

func managers(m *machine.Machine) []*event.Manager {
	mgrs := make([]*event.Manager, len(m.Cores))
	for i, c := range m.Cores {
		mgrs[i] = event.NewManager(c, event.DefaultCosts())
	}
	return mgrs
}
