package testbed

import "testing"

func TestKindStrings(t *testing.T) {
	for kind, want := range map[ServerKind]string{
		EbbRT:       "EbbRT",
		LinuxVM:     "Linux",
		LinuxNative: "Linux Native",
		OSv:         "OSV",
	} {
		if kind.String() != want {
			t.Fatalf("%d -> %q, want %q", kind, kind.String(), want)
		}
	}
}

func TestPairTopology(t *testing.T) {
	pair := NewPair(EbbRT, 4, 8)
	if got := len(pair.Server.Mgrs()); got != 4 {
		t.Fatalf("server cores %d", got)
	}
	if got := len(pair.Client.Mgrs()); got != 8 {
		t.Fatalf("client cores %d", got)
	}
	if pair.Client.Kernel() != pair.Server.Kernel() {
		t.Fatal("pair machines on different kernels")
	}
}

func TestSymmetricPairSameKindBothEnds(t *testing.T) {
	pair := NewSymmetricPair(LinuxVM, 1)
	if pair.Client.Name() != pair.Server.Name() {
		t.Fatalf("asymmetric: %q vs %q", pair.Client.Name(), pair.Server.Name())
	}
}
